// Plain-text serialization of graphs (DIMACS-flavored), used by examples and
// for persisting benchmark workloads.
//
// Format:
//   p krsp <num_vertices> <num_edges>
//   a <from> <to> <cost> <delay>     (one line per edge, 0-based vertices)
// Lines starting with 'c' are comments.
//
// Parse errors are util::CheckError with positional context — "file.kri:
// line 12, column 7: expected integer for arc cost" — produced by
// FieldScanner, a single-line tokenizer that tracks columns. GraphParser
// consumes lines one at a time with caller-supplied line numbers, so a
// reader that interleaves its own line kinds (core::read_instance's 'q'
// query line) still reports real positions in the original stream.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "graph/digraph.h"

namespace krsp::graph {

void write_graph(std::ostream& os, const Digraph& g);
Digraph read_graph(std::istream& is);

void write_graph_file(const std::string& path, const Digraph& g);
Digraph read_graph_file(const std::string& path);

/// Tokenizer for one line of a DIMACS-flavored file. Every failure
/// throws util::CheckError carrying "<context>: line N, column C: why"
/// (context omitted when empty), where the column is 1-based and points
/// at the offending token.
class FieldScanner {
 public:
  FieldScanner(std::string_view line, int line_number,
               std::string_view context = "")
      : line_(line), line_number_(line_number), context_(context) {}

  /// Consumes the one-character line kind ('p', 'a', 'q', ...).
  char kind();
  /// Consumes the next integer token; `what` names it in errors
  /// ("arc cost"). Rejects non-numeric tokens and int64 overflow.
  [[nodiscard]] std::int64_t integer(const char* what);
  /// Consumes the next whitespace-delimited word.
  [[nodiscard]] std::string word(const char* what);
  /// Requires only whitespace to remain on the line.
  void expect_end();
  [[nodiscard]] bool at_end();

  /// Raises a positioned error at the current scan position — for
  /// semantic failures (out-of-range endpoint, bad tag) discovered after
  /// the token lexed fine.
  [[noreturn]] void error(const std::string& why) const;

 private:
  [[noreturn]] void fail(const std::string& why, std::size_t column) const;
  void skip_spaces();

  std::string_view line_;
  int line_number_;
  std::string_view context_;
  std::size_t pos_ = 0;
};

/// Incremental graph reader: feed lines (with their 1-based numbers in
/// the enclosing stream) and finish(). Accepts 'p' / 'a' / 'c' / blank
/// lines; anything else is a positioned error. Callers layering extra
/// line kinds on the format (core::read_instance) test the kind
/// themselves and route only graph lines here.
class GraphParser {
 public:
  explicit GraphParser(std::string_view context = "") : context_(context) {}

  void consume(std::string_view line, int line_number);
  /// Validates the header was seen and the declared edge count matches;
  /// returns the graph.
  [[nodiscard]] Digraph finish();

 private:
  std::string context_;
  Digraph graph_;
  int declared_edges_ = -1;
  bool have_header_ = false;
  int last_line_ = 0;
};

}  // namespace krsp::graph

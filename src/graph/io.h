// Plain-text serialization of graphs (DIMACS-flavored), used by examples and
// for persisting benchmark workloads.
//
// Format:
//   p krsp <num_vertices> <num_edges>
//   a <from> <to> <cost> <delay>     (one line per edge, 0-based vertices)
// Lines starting with 'c' are comments.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/digraph.h"

namespace krsp::graph {

void write_graph(std::ostream& os, const Digraph& g);
Digraph read_graph(std::istream& is);

void write_graph_file(const std::string& path, const Digraph& g);
Digraph read_graph_file(const std::string& path);

}  // namespace krsp::graph

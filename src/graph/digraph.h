// Directed multigraph with per-edge integral cost and delay.
//
// This is the substrate for every algorithm in the library. It is a
// *multigraph* on purpose: the residual graphs of Definition 6 in the paper
// contain pairs of parallel same-direction edges with different weights, and
// the auxiliary graphs of Algorithm 2 duplicate vertices into cost layers.
// Costs and delays are signed 64-bit so residual graphs (negated weights)
// reuse the same type.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/check.h"

namespace krsp::graph {

using VertexId = std::int32_t;
using EdgeId = std::int32_t;
using Cost = std::int64_t;
using Delay = std::int64_t;

inline constexpr VertexId kInvalidVertex = -1;
inline constexpr EdgeId kInvalidEdge = -1;

struct Edge {
  VertexId from = kInvalidVertex;
  VertexId to = kInvalidVertex;
  Cost cost = 0;
  Delay delay = 0;
};

class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(int num_vertices) { resize(num_vertices); }

  /// Grow to at least `num_vertices` vertices.
  void resize(int num_vertices) {
    KRSP_CHECK(num_vertices >= 0);
    if (num_vertices > static_cast<int>(out_.size())) {
      out_.resize(num_vertices);
      in_.resize(num_vertices);
    }
  }

  VertexId add_vertex() {
    out_.emplace_back();
    in_.emplace_back();
    return static_cast<VertexId>(out_.size() - 1);
  }

  EdgeId add_edge(VertexId from, VertexId to, Cost cost, Delay delay) {
    KRSP_CHECK_MSG(is_vertex(from) && is_vertex(to),
                   "add_edge(" << from << "," << to << ") on graph with "
                               << num_vertices() << " vertices");
    const auto id = static_cast<EdgeId>(edges_.size());
    edges_.push_back(Edge{from, to, cost, delay});
    out_[from].push_back(id);
    in_[to].push_back(id);
    return id;
  }

  [[nodiscard]] int num_vertices() const {
    return static_cast<int>(out_.size());
  }
  [[nodiscard]] int num_edges() const { return static_cast<int>(edges_.size()); }

  [[nodiscard]] bool is_vertex(VertexId v) const {
    return v >= 0 && v < num_vertices();
  }
  [[nodiscard]] bool is_edge(EdgeId e) const {
    return e >= 0 && e < num_edges();
  }

  [[nodiscard]] const Edge& edge(EdgeId e) const {
    KRSP_DCHECK(is_edge(e));
    return edges_[e];
  }

  /// Removes every edge but keeps the vertex set and — crucially — the
  /// allocated adjacency storage, so a graph rebuilt in place with the same
  /// shape (residual graphs across cancellation iterations) reuses its
  /// buffers instead of reallocating.
  void clear_edges() {
    edges_.clear();
    for (auto& v : out_) v.clear();
    for (auto& v : in_) v.clear();
  }

  /// Updates one edge's delay in place (live-network degradation events);
  /// topology and edge ids stay stable so provisioned paths remain
  /// addressable.
  void set_edge_delay(EdgeId e, Delay delay) {
    KRSP_CHECK(is_edge(e));
    edges_[e].delay = delay;
  }

  [[nodiscard]] std::span<const EdgeId> out_edges(VertexId v) const {
    KRSP_DCHECK(is_vertex(v));
    return out_[v];
  }
  [[nodiscard]] std::span<const EdgeId> in_edges(VertexId v) const {
    KRSP_DCHECK(is_vertex(v));
    return in_[v];
  }

  [[nodiscard]] std::span<const Edge> edges() const { return edges_; }

  [[nodiscard]] int out_degree(VertexId v) const {
    return static_cast<int>(out_edges(v).size());
  }
  [[nodiscard]] int in_degree(VertexId v) const {
    return static_cast<int>(in_edges(v).size());
  }

  /// Sum of all edge costs (Σc(e) in the paper; bounds the budget B).
  [[nodiscard]] Cost total_cost() const;
  /// Sum of all edge delays (Σd(e)).
  [[nodiscard]] Delay total_delay() const;
  /// Max |cost| over edges.
  [[nodiscard]] Cost max_abs_cost() const;
  /// Max |delay| over edges.
  [[nodiscard]] Delay max_abs_delay() const;

  /// Graph with every edge reversed (weights unchanged).
  [[nodiscard]] Digraph reversed() const;

  /// Human-readable one-line summary, e.g. "Digraph(n=8, m=21)".
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
};

/// Total cost of an edge sequence/set.
Cost path_cost(const Digraph& g, std::span<const EdgeId> edges);
/// Total delay of an edge sequence/set.
Delay path_delay(const Digraph& g, std::span<const EdgeId> edges);

/// True iff `edges` forms a contiguous walk from `from` to `to`.
bool is_walk(const Digraph& g, std::span<const EdgeId> edges, VertexId from,
             VertexId to);

/// True iff `edges` is a walk from `from` to `to` that repeats no edge and
/// no intermediate vertex (a simple path).
bool is_simple_path(const Digraph& g, std::span<const EdgeId> edges,
                    VertexId from, VertexId to);

}  // namespace krsp::graph

#include "graph/io.h"

#include <charconv>
#include <fstream>
#include <sstream>
#include <string>

#include "util/check.h"

namespace krsp::graph {

namespace {

bool is_space(char c) { return c == ' ' || c == '\t' || c == '\r'; }

}  // namespace

void FieldScanner::fail(const std::string& why, std::size_t column) const {
  std::ostringstream os;
  if (!context_.empty()) os << context_ << ": ";
  os << "line " << line_number_ << ", column " << (column + 1) << ": " << why;
  throw util::CheckError(os.str());
}

void FieldScanner::skip_spaces() {
  while (pos_ < line_.size() && is_space(line_[pos_])) ++pos_;
}

char FieldScanner::kind() {
  skip_spaces();
  if (pos_ >= line_.size()) fail("expected a line kind", pos_);
  const char c = line_[pos_++];
  if (pos_ < line_.size() && !is_space(line_[pos_]))
    fail("line kind must be a single character", pos_ - 1);
  return c;
}

std::int64_t FieldScanner::integer(const char* what) {
  skip_spaces();
  const std::size_t start = pos_;
  if (pos_ >= line_.size())
    fail(std::string("missing ") + what + " (expected an integer)", start);
  if (line_[pos_] == '-' || line_[pos_] == '+') ++pos_;
  while (pos_ < line_.size() && !is_space(line_[pos_])) ++pos_;
  std::int64_t value = 0;
  const auto [end, ec] =
      std::from_chars(line_.data() + start, line_.data() + pos_, value);
  if (ec == std::errc::result_out_of_range)
    fail(std::string(what) + " overflows 64 bits", start);
  if (ec != std::errc() || end != line_.data() + pos_)
    fail(std::string("expected integer for ") + what + ", got \"" +
             std::string(line_.substr(start, pos_ - start)) + "\"",
         start);
  return value;
}

std::string FieldScanner::word(const char* what) {
  skip_spaces();
  const std::size_t start = pos_;
  while (pos_ < line_.size() && !is_space(line_[pos_])) ++pos_;
  if (pos_ == start) fail(std::string("missing ") + what, start);
  return std::string(line_.substr(start, pos_ - start));
}

void FieldScanner::expect_end() {
  skip_spaces();
  if (pos_ < line_.size())
    fail("unexpected trailing content \"" + std::string(line_.substr(pos_)) +
             "\"",
         pos_);
}

bool FieldScanner::at_end() {
  skip_spaces();
  return pos_ >= line_.size();
}

void FieldScanner::error(const std::string& why) const { fail(why, pos_); }

void GraphParser::consume(std::string_view line, int line_number) {
  last_line_ = line_number;
  FieldScanner scan(line, line_number, context_);
  if (scan.at_end()) return;  // blank line
  const char kind = scan.kind();
  if (kind == 'c') return;  // comment; rest of line is free-form
  if (kind == 'p') {
    const std::string tag = scan.word("problem tag");
    if (tag != "krsp") scan.error("unexpected problem tag \"" + tag + "\"");
    const std::int64_t n = scan.integer("vertex count");
    const std::int64_t m = scan.integer("edge count");
    scan.expect_end();
    if (n < 0 || m < 0)
      scan.error("vertex/edge counts must be non-negative");
    graph_.resize(static_cast<int>(n));
    declared_edges_ = static_cast<int>(m);
    have_header_ = true;
    return;
  }
  if (kind == 'a') {
    if (!have_header_)
      scan.error("arc line before the problem ('p') line");
    const std::int64_t u = scan.integer("arc tail");
    const std::int64_t v = scan.integer("arc head");
    const Cost c = scan.integer("arc cost");
    const Delay d = scan.integer("arc delay");
    scan.expect_end();
    if (u < 0 || u >= graph_.num_vertices() || v < 0 ||
        v >= graph_.num_vertices())
      scan.error("arc endpoint out of range (graph has " +
                 std::to_string(graph_.num_vertices()) + " vertices)");
    graph_.add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v), c, d);
    return;
  }
  scan.error(std::string("unknown line kind '") + kind + "'");
}

Digraph GraphParser::finish() {
  const auto positioned = [&](const std::string& why) -> util::CheckError {
    std::ostringstream os;
    if (!context_.empty()) os << context_ << ": ";
    os << "line " << last_line_ << ": " << why;
    return util::CheckError(os.str());
  };
  if (!have_header_)
    throw positioned("graph stream missing the problem ('p') line");
  if (declared_edges_ != graph_.num_edges())
    throw positioned("edge count mismatch: declared " +
                     std::to_string(declared_edges_) + ", read " +
                     std::to_string(graph_.num_edges()));
  return std::move(graph_);
}

void write_graph(std::ostream& os, const Digraph& g) {
  os << "c krsp digraph, cost+delay per arc\n";
  os << "p krsp " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const auto& e : g.edges())
    os << "a " << e.from << ' ' << e.to << ' ' << e.cost << ' ' << e.delay
       << '\n';
}

Digraph read_graph(std::istream& is) {
  GraphParser parser;
  std::string line;
  int line_number = 0;
  while (std::getline(is, line)) parser.consume(line, ++line_number);
  return parser.finish();
}

void write_graph_file(const std::string& path, const Digraph& g) {
  std::ofstream os(path);
  KRSP_CHECK_MSG(os.good(), "cannot open for write: " << path);
  write_graph(os, g);
}

Digraph read_graph_file(const std::string& path) {
  std::ifstream is(path);
  KRSP_CHECK_MSG(is.good(), "cannot open for read: " << path);
  GraphParser parser(path);
  std::string line;
  int line_number = 0;
  while (std::getline(is, line)) parser.consume(line, ++line_number);
  return parser.finish();
}

}  // namespace krsp::graph

#include "graph/io.h"

#include <fstream>
#include <sstream>
#include <string>

#include "util/check.h"

namespace krsp::graph {

void write_graph(std::ostream& os, const Digraph& g) {
  os << "c krsp digraph, cost+delay per arc\n";
  os << "p krsp " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const auto& e : g.edges())
    os << "a " << e.from << ' ' << e.to << ' ' << e.cost << ' ' << e.delay
       << '\n';
}

Digraph read_graph(std::istream& is) {
  Digraph g;
  std::string line;
  int declared_edges = -1;
  bool have_header = false;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream ls(line);
    char kind = 0;
    ls >> kind;
    if (kind == 'p') {
      std::string tag;
      int n = 0, m = 0;
      ls >> tag >> n >> m;
      KRSP_CHECK_MSG(tag == "krsp", "unexpected problem tag: " << tag);
      KRSP_CHECK(n >= 0 && m >= 0);
      g.resize(n);
      declared_edges = m;
      have_header = true;
    } else if (kind == 'a') {
      KRSP_CHECK_MSG(have_header, "arc line before problem line");
      VertexId u = kInvalidVertex, v = kInvalidVertex;
      Cost c = 0;
      Delay d = 0;
      ls >> u >> v >> c >> d;
      KRSP_CHECK_MSG(!ls.fail(), "malformed arc line: " << line);
      g.add_edge(u, v, c, d);
    } else {
      KRSP_CHECK_MSG(false, "unknown line kind '" << kind << "' in: " << line);
    }
  }
  KRSP_CHECK_MSG(have_header, "graph stream missing problem line");
  KRSP_CHECK_MSG(declared_edges == g.num_edges(),
                 "edge count mismatch: declared " << declared_edges << " read "
                                                  << g.num_edges());
  return g;
}

void write_graph_file(const std::string& path, const Digraph& g) {
  std::ofstream os(path);
  KRSP_CHECK_MSG(os.good(), "cannot open for write: " << path);
  write_graph(os, g);
}

Digraph read_graph_file(const std::string& path) {
  std::ifstream is(path);
  KRSP_CHECK_MSG(is.good(), "cannot open for read: " << path);
  return read_graph(is);
}

}  // namespace krsp::graph

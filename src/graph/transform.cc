#include "graph/transform.h"

namespace krsp::graph {

SplitGraph::SplitGraph(const Digraph& base)
    : num_base_vertices_(base.num_vertices()),
      split_(2 * base.num_vertices()) {
  // Gates first so their ids are stable (= base vertex id).
  for (VertexId v = 0; v < num_base_vertices_; ++v) {
    split_.add_edge(in_vertex(v), out_vertex(v), 0, 0);
    base_edge_.push_back(kInvalidEdge);
  }
  for (EdgeId e = 0; e < base.num_edges(); ++e) {
    const auto& edge = base.edge(e);
    split_.add_edge(out_vertex(edge.from), in_vertex(edge.to), edge.cost,
                    edge.delay);
    base_edge_.push_back(e);
  }
}

std::vector<EdgeId> SplitGraph::project_path(
    std::span<const EdgeId> split_path) const {
  std::vector<EdgeId> out;
  for (const EdgeId e : split_path) {
    if (!is_gate(e)) out.push_back(base_edge_of(e));
  }
  return out;
}

}  // namespace krsp::graph

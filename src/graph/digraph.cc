#include "graph/digraph.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <unordered_set>

namespace krsp::graph {

Cost Digraph::total_cost() const {
  Cost sum = 0;
  for (const auto& e : edges_) sum += e.cost;
  return sum;
}

Delay Digraph::total_delay() const {
  Delay sum = 0;
  for (const auto& e : edges_) sum += e.delay;
  return sum;
}

Cost Digraph::max_abs_cost() const {
  Cost best = 0;
  for (const auto& e : edges_) best = std::max(best, std::abs(e.cost));
  return best;
}

Delay Digraph::max_abs_delay() const {
  Delay best = 0;
  for (const auto& e : edges_) best = std::max(best, std::abs(e.delay));
  return best;
}

Digraph Digraph::reversed() const {
  Digraph r(num_vertices());
  for (const auto& e : edges_) r.add_edge(e.to, e.from, e.cost, e.delay);
  return r;
}

std::string Digraph::summary() const {
  std::ostringstream os;
  os << "Digraph(n=" << num_vertices() << ", m=" << num_edges() << ")";
  return os.str();
}

Cost path_cost(const Digraph& g, std::span<const EdgeId> edges) {
  Cost sum = 0;
  for (const EdgeId e : edges) sum += g.edge(e).cost;
  return sum;
}

Delay path_delay(const Digraph& g, std::span<const EdgeId> edges) {
  Delay sum = 0;
  for (const EdgeId e : edges) sum += g.edge(e).delay;
  return sum;
}

bool is_walk(const Digraph& g, std::span<const EdgeId> edges, VertexId from,
             VertexId to) {
  if (edges.empty()) return from == to;
  VertexId at = from;
  for (const EdgeId e : edges) {
    if (!g.is_edge(e) || g.edge(e).from != at) return false;
    at = g.edge(e).to;
  }
  return at == to;
}

bool is_simple_path(const Digraph& g, std::span<const EdgeId> edges,
                    VertexId from, VertexId to) {
  if (!is_walk(g, edges, from, to)) return false;
  std::unordered_set<VertexId> seen;
  std::unordered_set<EdgeId> seen_edges;
  seen.insert(from);
  for (const EdgeId e : edges) {
    if (!seen_edges.insert(e).second) return false;
    const VertexId head = g.edge(e).to;
    // The endpoint may equal `from` only if this is the final edge of a
    // cycle-shaped "path"; for s-t paths from != to so head must be fresh.
    if (!seen.insert(head).second) return false;
  }
  return true;
}

}  // namespace krsp::graph

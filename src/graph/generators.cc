#include "graph/generators.h"

#include <cmath>
#include <set>
#include <utility>
#include <vector>

namespace krsp::gen {

namespace {

Cost draw_cost(util::Rng& rng, const WeightRange& w) {
  return rng.uniform_int(w.cost_min, w.cost_max);
}

Delay draw_delay(util::Rng& rng, const WeightRange& w) {
  return rng.uniform_int(w.delay_min, w.delay_max);
}

}  // namespace

Digraph erdos_renyi(util::Rng& rng, int n, double p, const WeightRange& w) {
  KRSP_CHECK(n >= 0 && p >= 0.0 && p <= 1.0);
  Digraph g(n);
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = 0; v < n; ++v)
      if (u != v && rng.bernoulli(p))
        g.add_edge(u, v, draw_cost(rng, w), draw_delay(rng, w));
  return g;
}

Digraph random_m_edges(util::Rng& rng, int n, int m, const WeightRange& w) {
  KRSP_CHECK(n >= 2);
  KRSP_CHECK_MSG(m <= static_cast<std::int64_t>(n) * (n - 1),
                 "too many edges requested for simple digraph");
  Digraph g(n);
  std::set<std::pair<VertexId, VertexId>> used;
  while (static_cast<int>(used.size()) < m) {
    const auto u = static_cast<VertexId>(rng.uniform_int(0, n - 1));
    const auto v = static_cast<VertexId>(rng.uniform_int(0, n - 1));
    if (u == v || !used.emplace(u, v).second) continue;
    g.add_edge(u, v, draw_cost(rng, w), draw_delay(rng, w));
  }
  return g;
}

Digraph waxman(util::Rng& rng, int n, const WaxmanParams& params) {
  KRSP_CHECK(n >= 0);
  Digraph g(n);
  std::vector<std::pair<double, double>> pos(n);
  for (auto& p : pos) p = {rng.uniform01(), rng.uniform01()};
  const double diag = std::sqrt(2.0);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = 0; v < n; ++v) {
      if (u == v) continue;
      const double dx = pos[u].first - pos[v].first;
      const double dy = pos[u].second - pos[v].second;
      const double dist = std::sqrt(dx * dx + dy * dy);
      const double prob =
          params.beta * std::exp(-dist / (params.alpha * diag));
      if (!rng.bernoulli(prob)) continue;
      const Delay delay = std::max<Delay>(
          1, static_cast<Delay>(
                 std::ceil(dist * static_cast<double>(params.delay_scale))));
      g.add_edge(u, v, rng.uniform_int(params.cost_min, params.cost_max),
                 delay);
    }
  }
  return g;
}

Digraph grid(util::Rng& rng, int width, int height, const WeightRange& w) {
  KRSP_CHECK(width >= 1 && height >= 1);
  Digraph g(width * height);
  const auto id = [width](int r, int c) {
    return static_cast<VertexId>(r * width + c);
  };
  for (int r = 0; r < height; ++r) {
    for (int c = 0; c < width; ++c) {
      if (c + 1 < width) {
        g.add_edge(id(r, c), id(r, c + 1), draw_cost(rng, w),
                   draw_delay(rng, w));
        g.add_edge(id(r, c + 1), id(r, c), draw_cost(rng, w),
                   draw_delay(rng, w));
      }
      if (r + 1 < height) {
        g.add_edge(id(r, c), id(r + 1, c), draw_cost(rng, w),
                   draw_delay(rng, w));
        g.add_edge(id(r + 1, c), id(r, c), draw_cost(rng, w),
                   draw_delay(rng, w));
      }
    }
  }
  return g;
}

Digraph layered_dag(util::Rng& rng, int layers, int width, double p, int k,
                    const WeightRange& w) {
  KRSP_CHECK(layers >= 1 && width >= 1 && k >= 1 && k <= width);
  const int n = layers * width + 2;
  Digraph g(n);
  const VertexId s = 0;
  const VertexId t = static_cast<VertexId>(n - 1);
  const auto id = [width](int layer, int i) {
    return static_cast<VertexId>(1 + layer * width + i);
  };
  // Spine: k vertex-disjoint guaranteed s-t paths through lanes 0..k-1.
  for (int lane = 0; lane < k; ++lane) {
    g.add_edge(s, id(0, lane), draw_cost(rng, w), draw_delay(rng, w));
    for (int layer = 0; layer + 1 < layers; ++layer)
      g.add_edge(id(layer, lane), id(layer + 1, lane), draw_cost(rng, w),
                 draw_delay(rng, w));
    g.add_edge(id(layers - 1, lane), t, draw_cost(rng, w), draw_delay(rng, w));
  }
  // Random extra arcs between consecutive layers, plus extra s/t attachment.
  for (int i = k; i < width; ++i) {
    if (rng.bernoulli(p)) {
      g.add_edge(s, id(0, i), draw_cost(rng, w), draw_delay(rng, w));
    }
    if (rng.bernoulli(p)) {
      g.add_edge(id(layers - 1, i), t, draw_cost(rng, w), draw_delay(rng, w));
    }
  }
  for (int layer = 0; layer + 1 < layers; ++layer)
    for (int i = 0; i < width; ++i)
      for (int j = 0; j < width; ++j)
        if ((i != j || i >= k) && rng.bernoulli(p))
          g.add_edge(id(layer, i), id(layer + 1, j), draw_cost(rng, w),
                     draw_delay(rng, w));
  return g;
}

Digraph barabasi_albert(util::Rng& rng, int n, int attach,
                        const WeightRange& w) {
  KRSP_CHECK(attach >= 1);
  const int m0 = attach + 1;
  KRSP_CHECK_MSG(n >= m0, "barabasi_albert: n < attach + 1");
  Digraph g(n);
  // Repeated-endpoint list: sampling uniformly from it is sampling
  // proportionally to degree.
  std::vector<VertexId> endpoints;
  for (VertexId u = 0; u < m0; ++u)
    for (VertexId v = 0; v < m0; ++v)
      if (u < v) {
        g.add_edge(u, v, draw_cost(rng, w), draw_delay(rng, w));
        g.add_edge(v, u, draw_cost(rng, w), draw_delay(rng, w));
        endpoints.push_back(u);
        endpoints.push_back(v);
      }
  for (VertexId v = m0; v < n; ++v) {
    std::set<VertexId> targets;
    while (static_cast<int>(targets.size()) < attach) {
      const auto pick = endpoints[rng.uniform_int(
          0, static_cast<std::int64_t>(endpoints.size()) - 1)];
      targets.insert(pick);
    }
    for (const VertexId u : targets) {
      g.add_edge(v, u, draw_cost(rng, w), draw_delay(rng, w));
      g.add_edge(u, v, draw_cost(rng, w), draw_delay(rng, w));
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  return g;
}

Digraph isp_like(util::Rng& rng, const IspParams& params) {
  const int core = params.core_size;
  KRSP_CHECK(core >= 3 && params.region_count >= 1 && params.region_size >= 1);
  const int n = core + params.region_count * params.region_size;
  Digraph g(n);
  const auto core_id = [](int i) { return static_cast<VertexId>(i); };
  const auto region_id = [&](int r, int i) {
    return static_cast<VertexId>(core + r * params.region_size + i);
  };
  const auto add_bidir = [&](VertexId u, VertexId v, Cost c, Delay d) {
    g.add_edge(u, v, c, d);
    g.add_edge(v, u, c, d);
  };
  // Core ring: cheap and fast.
  for (int i = 0; i < core; ++i)
    add_bidir(core_id(i), core_id((i + 1) % core), rng.uniform_int(1, 3),
              rng.uniform_int(1, 3));
  // Random core chords.
  for (int i = 0; i < core; ++i)
    for (int j = i + 2; j < core; ++j)
      if ((i != 0 || j != core - 1) && rng.bernoulli(params.core_chord_prob))
        add_bidir(core_id(i), core_id(j), rng.uniform_int(1, 4),
                  rng.uniform_int(1, 4));
  // Regions: local chain, dual-homed onto two distinct core routers via
  // slower, pricier access links.
  for (int r = 0; r < params.region_count; ++r) {
    for (int i = 0; i + 1 < params.region_size; ++i)
      add_bidir(region_id(r, i), region_id(r, i + 1), rng.uniform_int(1, 3),
                rng.uniform_int(2, 5));
    const int home1 = static_cast<int>(rng.uniform_int(0, core - 1));
    int home2 = static_cast<int>(rng.uniform_int(0, core - 2));
    if (home2 >= home1) ++home2;
    add_bidir(region_id(r, 0), core_id(home1), rng.uniform_int(3, 8),
              rng.uniform_int(4, 10));
    add_bidir(region_id(r, params.region_size - 1), core_id(home2),
              rng.uniform_int(3, 8), rng.uniform_int(4, 10));
  }
  return g;
}

Figure1Gadget figure1_gadget(Delay D, Cost c_opt) {
  KRSP_CHECK(D >= 1 && c_opt >= 2);
  Figure1Gadget fig;
  fig.delay_bound = D;
  fig.optimal_cost = c_opt;
  fig.bad_cost = c_opt * (D + 1) - 1;

  // Vertices: s=0, a=1, b=2, c=3, t=4.
  Digraph g(5);
  const VertexId s = 0, a = 1, b = 2, c = 3, t = 4;
  g.add_edge(s, a, 0, 0);
  g.add_edge(a, b, 0, 1);
  g.add_edge(b, c, 0, D);
  g.add_edge(c, t, 0, 0);
  g.add_edge(s, t, 0, 0);                  // second path
  g.add_edge(b, t, c_opt, D - 1);          // optimal detour: s-a-b-t
  g.add_edge(a, t, fig.bad_cost, 0);       // tempting ruinous detour: s-a-t
  fig.graph = std::move(g);
  fig.s = s;
  fig.t = t;
  return fig;
}

Figure2Example figure2_example() {
  Figure2Example fig;
  // s=0, x=1, y=2, z=3, t=4; current solution path s-x-y-z-t.
  Digraph g(5);
  fig.current_path.push_back(g.add_edge(fig.s, fig.x, 1, 2));
  fig.current_path.push_back(g.add_edge(fig.x, fig.y, 2, 3));
  fig.current_path.push_back(g.add_edge(fig.y, fig.z, 1, 4));
  fig.current_path.push_back(g.add_edge(fig.z, fig.t, 2, 2));
  // Bypass arcs creating residual cycles of positive cost within B = 6:
  // x->z (cost 4, delay 1): residual cycle x->z, z->y(-1,-4), y->x(-2,-3)
  // has cost 1 in (0, 6] and delay -6 < 0 — a delay-reducing cycle.
  g.add_edge(fig.x, fig.z, 4, 1);
  // s->y direct and y->t direct give alternative partial reroutes.
  g.add_edge(fig.s, fig.y, 5, 1);
  g.add_edge(fig.y, fig.t, 5, 1);
  fig.graph = std::move(g);
  return fig;
}

Digraph tradeoff_chains(util::Rng& rng, int chains, int hops, Cost fast_cost,
                        Delay slow_delay) {
  KRSP_CHECK(chains >= 1 && hops >= 1 && fast_cost >= 1 && slow_delay >= 1);
  // s = 0, t = 1, then chain c hop h internal vertex.
  const int n = 2 + chains * (hops - 1);
  Digraph g(std::max(n, 2));
  const VertexId s = 0, t = 1;
  const auto inner = [&](int chain, int h) {
    return static_cast<VertexId>(2 + chain * (hops - 1) + h);
  };
  for (int c = 0; c < chains; ++c) {
    for (int h = 0; h < hops; ++h) {
      const VertexId u = h == 0 ? s : inner(c, h - 1);
      const VertexId v = h == hops - 1 ? t : inner(c, h);
      // Cheap/slow variant and expensive/fast variant of every hop.
      g.add_edge(u, v, rng.uniform_int(0, 1), slow_delay);
      g.add_edge(u, v, fast_cost + rng.uniform_int(0, 1), 1);
    }
  }
  return g;
}

}  // namespace krsp::gen

// Compressed-sparse-row adjacency view of a Digraph.
//
// The bicameral product-graph scan relaxes every edge (B+1) times per
// Bellman–Ford round; the pointer-chasing vector-of-vectors adjacency is
// the bottleneck there. CsrView packs (head, cost, delay, id) per arc into
// contiguous arrays grouped by tail — a read-only snapshot taken once per
// residual graph.
#pragma once

#include <vector>

#include "graph/digraph.h"

namespace krsp::graph {

class CsrView {
 public:
  struct Arc {
    VertexId to;
    Cost cost;
    Delay delay;
    EdgeId id;
  };

  explicit CsrView(const Digraph& g) {
    const int n = g.num_vertices();
    first_.assign(n + 1, 0);
    for (const auto& e : g.edges()) ++first_[e.from + 1];
    for (int v = 0; v < n; ++v) first_[v + 1] += first_[v];
    arcs_.resize(g.num_edges());
    std::vector<int> at(first_.begin(), first_.end() - 1);
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto& edge = g.edge(e);
      arcs_[at[edge.from]++] = Arc{edge.to, edge.cost, edge.delay, e};
    }
  }

  [[nodiscard]] int num_vertices() const {
    return static_cast<int>(first_.size()) - 1;
  }
  [[nodiscard]] int num_arcs() const { return static_cast<int>(arcs_.size()); }

  [[nodiscard]] std::span<const Arc> out(VertexId v) const {
    KRSP_DCHECK(v >= 0 && v + 1 < static_cast<VertexId>(first_.size()));
    return {arcs_.data() + first_[v],
            static_cast<std::size_t>(first_[v + 1] - first_[v])};
  }

 private:
  std::vector<int> first_;
  std::vector<Arc> arcs_;
};

}  // namespace krsp::graph

// Compressed-sparse-row adjacency view of a Digraph.
//
// The bicameral product-graph scan relaxes every edge (B+1) times per
// Bellman–Ford round; the pointer-chasing vector-of-vectors adjacency is
// the bottleneck there. CsrView packs (head, cost, delay, id) per arc into
// contiguous arrays grouped by tail — a read-only snapshot taken once per
// residual graph. The `.krspb` instance store (store/container.h) keeps
// the same arrays on disk in structure-of-arrays form; the section
// constructor below assembles a view from them in one linear pass with
// no text parsing.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/digraph.h"

namespace krsp::graph {

class CsrView {
 public:
  struct Arc {
    VertexId to;
    Cost cost;
    Delay delay;
    EdgeId id;
  };

  explicit CsrView(const Digraph& g) {
    const int n = g.num_vertices();
    first_.assign(n + 1, 0);
    for (const auto& e : g.edges()) ++first_[e.from + 1];
    for (int v = 0; v < n; ++v) first_[v + 1] += first_[v];
    arcs_.resize(g.num_edges());
    std::vector<int> at(first_.begin(), first_.end() - 1);
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto& edge = g.edge(e);
      arcs_[at[edge.from]++] = Arc{edge.to, edge.cost, edge.delay, e};
    }
  }

  /// Assembles a view from CSR sections already grouped by tail (the
  /// mmap'd layout of store/format.h): `first` has n+1 monotone row
  /// starts, the arc arrays run parallel over m slots. Bounds are
  /// KRSP_CHECKed; content is taken as validated by the caller (the
  /// container's open() proves monotonicity, target ranges and the id
  /// permutation before any view is built).
  CsrView(int n, std::span<const std::uint64_t> first,
          std::span<const std::int32_t> targets, std::span<const Cost> costs,
          std::span<const Delay> delays, std::span<const std::int32_t> ids) {
    KRSP_CHECK(n >= 0 && first.size() == static_cast<std::size_t>(n) + 1);
    const std::size_t m = targets.size();
    KRSP_CHECK(costs.size() == m && delays.size() == m && ids.size() == m);
    first_.resize(n + 1);
    for (int v = 0; v <= n; ++v) first_[v] = static_cast<int>(first[v]);
    arcs_.resize(m);
    for (std::size_t a = 0; a < m; ++a)
      arcs_[a] = Arc{targets[a], costs[a], delays[a], ids[a]};
  }

  [[nodiscard]] int num_vertices() const {
    return static_cast<int>(first_.size()) - 1;
  }
  [[nodiscard]] int num_arcs() const { return static_cast<int>(arcs_.size()); }

  [[nodiscard]] std::span<const Arc> out(VertexId v) const {
    KRSP_DCHECK(v >= 0 && v + 1 < static_cast<VertexId>(first_.size()));
    return {arcs_.data() + first_[v],
            static_cast<std::size_t>(first_[v + 1] - first_[v])};
  }

 private:
  std::vector<int> first_;
  std::vector<Arc> arcs_;
};

}  // namespace krsp::graph

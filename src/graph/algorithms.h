// Structural graph algorithms: reachability, topological order, strongly
// connected components. Weight-aware algorithms live in src/paths.
#pragma once

#include <optional>
#include <vector>

#include "graph/digraph.h"

namespace krsp::graph {

/// Vertices reachable from `source` following edge direction.
std::vector<bool> reachable_from(const Digraph& g, VertexId source);

/// Vertices that can reach `sink` following edge direction.
std::vector<bool> can_reach(const Digraph& g, VertexId sink);

/// True iff a directed s→t path exists.
bool has_path(const Digraph& g, VertexId s, VertexId t);

/// Topological order of all vertices, or nullopt if the graph has a cycle.
std::optional<std::vector<VertexId>> topological_order(const Digraph& g);

/// Tarjan strongly connected components. Returns component id per vertex,
/// with components numbered in reverse topological order of the condensation
/// (i.e. component of u <= component of v whenever v→u is an edge... ids are
/// assigned as components complete). Also returns the number of components.
struct SccResult {
  std::vector<int> component;
  int num_components = 0;
};
SccResult strongly_connected_components(const Digraph& g);

/// Shortest (fewest-edges) s→t path as edge ids, or empty if unreachable and
/// s != t. BFS.
std::vector<EdgeId> bfs_path(const Digraph& g, VertexId s, VertexId t);

}  // namespace krsp::graph

// Structural graph algorithms: reachability, topological order, strongly
// connected components. Weight-aware algorithms live in src/paths.
#pragma once

#include <optional>
#include <vector>

#include "graph/digraph.h"

namespace krsp::graph {

/// Vertices reachable from `source` following edge direction.
std::vector<bool> reachable_from(const Digraph& g, VertexId source);

/// Vertices that can reach `sink` following edge direction.
std::vector<bool> can_reach(const Digraph& g, VertexId sink);

/// True iff a directed s→t path exists.
bool has_path(const Digraph& g, VertexId s, VertexId t);

/// Topological order of all vertices, or nullopt if the graph has a cycle.
std::optional<std::vector<VertexId>> topological_order(const Digraph& g);

/// Tarjan strongly connected components. Returns component id per vertex,
/// with components numbered in reverse topological order of the condensation
/// (i.e. component of u <= component of v whenever v→u is an edge... ids are
/// assigned as components complete). Also returns the number of components.
struct SccResult {
  std::vector<int> component;
  int num_components = 0;
};
SccResult strongly_connected_components(const Digraph& g);

/// SCC decomposition in the grouped form the bicameral kernel consumes:
/// besides the per-vertex component id, every vertex gets a *local id* (its
/// rank among the members of its component, members listed in ascending
/// global id), and the members are stored grouped per component behind CSR
/// offsets. This is what lets a product-state DP run on |scc|·(budget+1)
/// compacted states instead of n·(budget+1): global vertex v maps to local
/// state row local_id[v], and component_members(c) enumerates the rows back
/// to global ids in a fixed, global-id-ascending order.
struct SccPartition {
  std::vector<int> component;   // per vertex: component id
  std::vector<int> local_id;    // per vertex: rank within its component
  std::vector<int> comp_first;  // size num_components+1: offsets into members
  std::vector<VertexId> members;  // grouped by component, ascending within
  int num_components = 0;

  [[nodiscard]] int component_size(int c) const {
    return comp_first[c + 1] - comp_first[c];
  }
  [[nodiscard]] std::span<const VertexId> component_members(int c) const {
    return {members.data() + comp_first[c],
            static_cast<std::size_t>(component_size(c))};
  }
};
SccPartition scc_partition(const Digraph& g);

/// Shortest (fewest-edges) s→t path as edge ids, or empty if unreachable and
/// s != t. BFS.
std::vector<EdgeId> bfs_path(const Digraph& g, VertexId s, VertexId t);

}  // namespace krsp::graph

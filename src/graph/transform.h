// Graph transformations.
//
// Vertex splitting reduces *vertex*-disjoint path problems to the
// edge-disjoint problems this library solves (the paper treats the
// edge-disjoint kRSP; Definition 2's footnote "(edge) disjoint" — the
// vertex-disjoint variant is the standard companion and reduces by
// splitting every vertex v into v_in → v_out with a zero-weight arc of
// unit "capacity").
#pragma once

#include <vector>

#include "graph/digraph.h"

namespace krsp::graph {

/// Result of splitting every vertex of a base graph.
///
/// Vertex v of the base becomes v_in (receives all in-arcs) and v_out
/// (emits all out-arcs), joined by a zero-cost zero-delay *gate* arc.
/// Edge-disjoint paths in the split graph that each cross a gate at most
/// once correspond to internally-vertex-disjoint paths of the base graph —
/// and unit-capacity gates enforce exactly that.
class SplitGraph {
 public:
  explicit SplitGraph(const Digraph& base);

  [[nodiscard]] const Digraph& digraph() const { return split_; }

  [[nodiscard]] VertexId in_vertex(VertexId base_vertex) const {
    KRSP_DCHECK(base_vertex >= 0 && base_vertex < num_base_vertices_);
    return static_cast<VertexId>(2 * base_vertex);
  }
  [[nodiscard]] VertexId out_vertex(VertexId base_vertex) const {
    KRSP_DCHECK(base_vertex >= 0 && base_vertex < num_base_vertices_);
    return static_cast<VertexId>(2 * base_vertex + 1);
  }
  [[nodiscard]] VertexId base_vertex_of(VertexId split_vertex) const {
    return split_vertex / 2;
  }

  /// True iff the split edge is a v_in -> v_out gate.
  [[nodiscard]] bool is_gate(EdgeId split_edge) const {
    return base_edge_[split_edge] == kInvalidEdge;
  }
  /// Base edge behind a non-gate split edge.
  [[nodiscard]] EdgeId base_edge_of(EdgeId split_edge) const {
    return base_edge_[split_edge];
  }

  /// Projects a path of the split graph to the base graph (gates dropped).
  [[nodiscard]] std::vector<EdgeId> project_path(
      std::span<const EdgeId> split_path) const;

 private:
  int num_base_vertices_;
  Digraph split_;
  std::vector<EdgeId> base_edge_;
};

}  // namespace krsp::graph

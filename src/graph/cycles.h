// Cycle extraction machinery.
//
// The paper's core operations produce (a) closed walks in residual/auxiliary
// graphs that must be split into *simple* cycles (Lemma 15 maps an auxiliary
// cycle to "a set of cycles" in the residual graph), and (b) balanced edge
// sets — every vertex with in-degree == out-degree — arising from the
// symmetric difference of two k-path systems (Proposition 8), which
// decompose into edge-disjoint simple cycles.
#pragma once

#include <vector>

#include "graph/digraph.h"

namespace krsp::graph {

/// A cycle represented as a sequence of edge ids forming a closed walk with
/// no repeated vertex (simple cycle).
using Cycle = std::vector<EdgeId>;

/// True iff `edges` forms a simple directed cycle in g (non-empty, closed,
/// no vertex repeated).
bool is_simple_cycle(const Digraph& g, std::span<const EdgeId> edges);

/// Splits a closed walk (sequence of edge ids, head of each edge == tail of
/// the next, last head == first tail) into edge-disjoint simple cycles whose
/// edge multisets partition the walk's. The walk may repeat vertices and
/// even edges (if the underlying multigraph has parallel edges, repeated ids
/// are still split correctly because the stack tracks positions).
std::vector<Cycle> decompose_closed_walk(const Digraph& g,
                                         std::span<const EdgeId> walk);

/// Decomposes an edge multiset in which every vertex is balanced
/// (in-degree == out-degree within the multiset) into edge-disjoint simple
/// cycles. KRSP_CHECKs the balance precondition.
std::vector<Cycle> decompose_balanced_edge_set(const Digraph& g,
                                               std::span<const EdgeId> edges);

}  // namespace krsp::graph

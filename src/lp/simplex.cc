#include "lp/simplex.h"

#include <algorithm>
#include <cmath>

namespace krsp::lp {

namespace {

// Dense tableau. Row layout: [coefficients | rhs].
struct Tableau {
  int rows = 0;
  int cols = 0;                        // excluding rhs column
  std::vector<std::vector<double>> a;  // rows x (cols + 1)
  std::vector<int> basis;              // basic column per row

  double rhs(int r) const { return a[r][cols]; }

  void pivot(int row, int col, double eps) {
    const double p = a[row][col];
    KRSP_CHECK(std::abs(p) > eps);
    for (int c = 0; c <= cols; ++c) a[row][c] /= p;
    for (int r = 0; r < rows; ++r) {
      if (r == row) continue;
      const double f = a[r][col];
      if (std::abs(f) <= eps) continue;
      for (int c = 0; c <= cols; ++c) a[r][c] -= f * a[row][c];
    }
    basis[row] = col;
  }
};

// One simplex phase: minimize `obj` (length cols). The objective row is
// first reduced against the current basis. Returns true on optimal, false
// on unbounded. Bland's rule throughout (anti-cycling).
bool run_phase(Tableau& t, std::vector<double> obj, int max_pivots,
               double eps) {
  for (int r = 0; r < t.rows; ++r) {
    const double f = obj[t.basis[r]];
    if (std::abs(f) <= eps) continue;
    for (int c = 0; c < t.cols; ++c) obj[c] -= f * t.a[r][c];
  }
  for (int iter = 0; iter < max_pivots; ++iter) {
    int enter = -1;
    for (int c = 0; c < t.cols; ++c) {
      if (obj[c] < -eps) {
        enter = c;
        break;
      }
    }
    if (enter < 0) return true;  // optimal
    // Bland's rule needs the *exact* minimum ratio with ties broken by the
    // smallest basis index; a loose tolerance window here reintroduces the
    // cycling Bland prevents (observed on degenerate circulation LPs).
    int leave = -1;
    double best_ratio = 0.0;
    constexpr double kTie = 1e-12;
    for (int r = 0; r < t.rows; ++r) {
      if (t.a[r][enter] > eps) {
        const double ratio = t.rhs(r) / t.a[r][enter];
        if (leave < 0) {
          leave = r;
          best_ratio = ratio;
        } else if (ratio < best_ratio - kTie ||
                   (ratio <= best_ratio + kTie &&
                    t.basis[r] < t.basis[leave])) {
          leave = r;
          best_ratio = std::min(best_ratio, ratio);
        }
      }
    }
    if (leave < 0) return false;  // unbounded
    const double f = obj[enter];
    t.pivot(leave, enter, eps);
    if (std::abs(f) > eps)
      for (int c = 0; c < t.cols; ++c) obj[c] -= f * t.a[leave][c];
  }
  KRSP_CHECK_MSG(false, "simplex exceeded pivot limit");
  return false;
}

}  // namespace

LpSolution SimplexSolver::solve(const LpModel& model) const {
  const double eps = options_.eps;
  const int n = model.num_variables();

  struct Row {
    std::vector<LinearTerm> terms;
    Relation rel;
    double rhs;
  };
  std::vector<Row> rows;
  for (const auto& c : model.constraints())
    rows.push_back({c.terms, c.relation, c.rhs});
  for (int j = 0; j < n; ++j)
    if (model.upper_bounds()[j] != kInfinity)
      rows.push_back(
          {{LinearTerm{j, 1.0}}, Relation::kLessEq, model.upper_bounds()[j]});

  // Normalize to rhs >= 0.
  for (auto& r : rows) {
    if (r.rhs < 0.0) {
      r.rhs = -r.rhs;
      for (auto& term : r.terms) term.coef = -term.coef;
      if (r.rel == Relation::kLessEq)
        r.rel = Relation::kGreaterEq;
      else if (r.rel == Relation::kGreaterEq)
        r.rel = Relation::kLessEq;
    }
  }

  const int m = static_cast<int>(rows.size());
  int num_slack = 0, num_artificial = 0;
  for (const auto& r : rows) {
    if (r.rel != Relation::kEq) ++num_slack;
    if (r.rel != Relation::kLessEq) ++num_artificial;
  }

  Tableau t;
  t.rows = m;
  t.cols = n + num_slack + num_artificial;
  t.a.assign(m, std::vector<double>(t.cols + 1, 0.0));
  t.basis.assign(m, -1);

  int slack_at = n;
  int artificial_at = n + num_slack;
  const int first_artificial = artificial_at;
  for (int r = 0; r < m; ++r) {
    for (const auto& term : rows[r].terms) t.a[r][term.var] += term.coef;
    t.a[r][t.cols] = rows[r].rhs;
    switch (rows[r].rel) {
      case Relation::kLessEq:
        t.a[r][slack_at] = 1.0;
        t.basis[r] = slack_at++;
        break;
      case Relation::kGreaterEq:
        t.a[r][slack_at++] = -1.0;
        t.a[r][artificial_at] = 1.0;
        t.basis[r] = artificial_at++;
        break;
      case Relation::kEq:
        t.a[r][artificial_at] = 1.0;
        t.basis[r] = artificial_at++;
        break;
    }
  }

  LpSolution solution;

  if (num_artificial > 0) {
    std::vector<double> phase1_obj(t.cols, 0.0);
    for (int c = first_artificial; c < t.cols; ++c) phase1_obj[c] = 1.0;
    const bool ok = run_phase(t, phase1_obj, options_.max_pivots, eps);
    KRSP_CHECK_MSG(ok, "phase-1 LP cannot be unbounded");
    double infeasibility = 0.0;
    for (int r = 0; r < m; ++r)
      if (t.basis[r] >= first_artificial) infeasibility += t.rhs(r);
    if (infeasibility > 1e-7) {
      solution.status = LpStatus::kInfeasible;
      return solution;
    }
    // Drive basic artificials out; rows where that is impossible are
    // redundant (zero over the real columns) and are dropped below.
    for (int r = 0; r < m; ++r) {
      if (t.basis[r] < first_artificial) continue;
      for (int c = 0; c < first_artificial; ++c) {
        if (std::abs(t.a[r][c]) > eps) {
          t.pivot(r, c, eps);
          break;
        }
      }
    }
    // Rebuild the tableau without artificial columns / redundant rows.
    Tableau t2;
    t2.cols = first_artificial;
    for (int r = 0; r < m; ++r) {
      if (t.basis[r] >= first_artificial) {
        KRSP_CHECK_MSG(std::abs(t.rhs(r)) <= 1e-7,
                       "non-redundant row stuck on artificial basis");
        continue;
      }
      std::vector<double> row(t.a[r].begin(),
                              t.a[r].begin() + first_artificial);
      row.push_back(t.rhs(r));
      t2.a.push_back(std::move(row));
      t2.basis.push_back(t.basis[r]);
    }
    t2.rows = static_cast<int>(t2.a.size());
    t = std::move(t2);
  }

  std::vector<double> obj(t.cols, 0.0);
  for (int j = 0; j < n; ++j) obj[j] = model.objective()[j];
  const bool ok = run_phase(t, std::move(obj), options_.max_pivots, eps);
  if (!ok) {
    solution.status = LpStatus::kUnbounded;
    return solution;
  }

  solution.status = LpStatus::kOptimal;
  solution.x.assign(n, 0.0);
  for (int r = 0; r < t.rows; ++r)
    if (t.basis[r] < n) solution.x[t.basis[r]] = t.rhs(r);
  solution.objective = 0.0;
  for (int j = 0; j < n; ++j)
    solution.objective += model.objective()[j] * solution.x[j];
  return solution;
}

}  // namespace krsp::lp

// Dense two-phase primal simplex with Bland's anti-cycling rule.
//
// Scope: the small network LPs of this library (tens to a few hundred
// variables). Finite upper bounds are lowered to explicit constraints; all
// structural variables are non-negative. Deterministic: same model, same
// pivots, same answer.
#pragma once

#include <vector>

#include "lp/model.h"

namespace krsp::lp {

enum class LpStatus { kOptimal, kInfeasible, kUnbounded };

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> x;
};

class SimplexSolver {
 public:
  struct Options {
    double eps = 1e-9;
    int max_pivots = 200000;
  };

  SimplexSolver() : options_(Options{}) {}
  explicit SimplexSolver(Options options) : options_(options) {}

  [[nodiscard]] LpSolution solve(const LpModel& model) const;

 private:
  Options options_;
};

}  // namespace krsp::lp

// Declarative linear-program builder consumed by the simplex solver.
//
// The library's LPs are small network LPs: the phase-1 arc-flow LP with a
// delay side constraint, and LP (6) of the paper on the auxiliary graphs
// H_v^±(B). Variables have bounds [lb, ub] (ub may be infinite); objective
// is always minimization.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "util/check.h"

namespace krsp::lp {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class Relation { kLessEq, kEq, kGreaterEq };

struct LinearTerm {
  int var = 0;
  double coef = 0.0;
};

struct Constraint {
  std::vector<LinearTerm> terms;
  Relation relation = Relation::kEq;
  double rhs = 0.0;
};

class LpModel {
 public:
  /// Adds a variable with bounds [lb, ub] and objective coefficient c.
  int add_variable(double objective_coef, double lb = 0.0,
                   double ub = kInfinity);

  /// Adds a constraint Σ coef·x relation rhs.
  void add_constraint(std::vector<LinearTerm> terms, Relation relation,
                      double rhs);

  [[nodiscard]] int num_variables() const {
    return static_cast<int>(objective_.size());
  }
  [[nodiscard]] int num_constraints() const {
    return static_cast<int>(constraints_.size());
  }
  [[nodiscard]] const std::vector<double>& objective() const {
    return objective_;
  }
  [[nodiscard]] const std::vector<double>& lower_bounds() const { return lb_; }
  [[nodiscard]] const std::vector<double>& upper_bounds() const { return ub_; }
  [[nodiscard]] const std::vector<Constraint>& constraints() const {
    return constraints_;
  }

 private:
  std::vector<double> objective_;
  std::vector<double> lb_;
  std::vector<double> ub_;
  std::vector<Constraint> constraints_;
};

}  // namespace krsp::lp

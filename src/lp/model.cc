#include "lp/model.h"

namespace krsp::lp {

int LpModel::add_variable(double objective_coef, double lb, double ub) {
  KRSP_CHECK_MSG(lb <= ub, "variable with lb > ub");
  KRSP_CHECK_MSG(lb == 0.0, "only lb == 0 variables are supported");
  objective_.push_back(objective_coef);
  lb_.push_back(lb);
  ub_.push_back(ub);
  return num_variables() - 1;
}

void LpModel::add_constraint(std::vector<LinearTerm> terms, Relation relation,
                             double rhs) {
  for (const auto& t : terms)
    KRSP_CHECK_MSG(t.var >= 0 && t.var < num_variables(),
                   "constraint references unknown variable " << t.var);
  constraints_.push_back(Constraint{std::move(terms), relation, rhs});
}

}  // namespace krsp::lp

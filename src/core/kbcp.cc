#include "core/kbcp.h"

#include <algorithm>

namespace krsp::core {

namespace {

// Swap the roles of cost and delay on every edge.
graph::Digraph swapped(const graph::Digraph& g) {
  graph::Digraph out(g.num_vertices());
  for (const auto& e : g.edges()) out.add_edge(e.from, e.to, e.delay, e.cost);
  return out;
}

struct Attempt {
  bool ok = false;
  PathSet paths;
  graph::Cost cost = 0;
  graph::Delay delay = 0;
};

double factor(double value, double bound) {
  if (bound <= 0.0) return value <= 0.0 ? 1.0 : 1e18;
  return value / bound;
}

}  // namespace

KbcpResult solve_kbcp(const KbcpInstance& inst, const SolverOptions& options) {
  KRSP_CHECK(inst.cost_bound >= 0 && inst.delay_bound >= 0);
  KbcpResult out;
  const KrspSolver solver(options);

  // Orientation A: min cost subject to the delay budget.
  Attempt a;
  {
    Instance krsp_inst;
    krsp_inst.graph = inst.graph;
    krsp_inst.s = inst.s;
    krsp_inst.t = inst.t;
    krsp_inst.k = inst.k;
    krsp_inst.delay_bound = inst.delay_bound;
    const auto s = solver.solve(krsp_inst);
    if (s.status == SolveStatus::kNoKDisjointPaths) {
      out.status = KbcpStatus::kNoKDisjointPaths;
      return out;
    }
    if (s.has_paths()) {
      a.ok = true;
      a.paths = s.paths;
      a.cost = s.cost;
      a.delay = s.delay;
    }
  }

  // Orientation B: min delay subject to the cost budget (measures swapped).
  Attempt b;
  {
    Instance krsp_inst;
    krsp_inst.graph = swapped(inst.graph);
    krsp_inst.s = inst.s;
    krsp_inst.t = inst.t;
    krsp_inst.k = inst.k;
    krsp_inst.delay_bound = inst.cost_bound;  // the "delay" is real cost
    const auto s = solver.solve(krsp_inst);
    if (s.has_paths()) {
      b.ok = true;
      b.paths = s.paths;  // edge ids are shared with the original graph
      b.cost = b.paths.total_cost(inst.graph);
      b.delay = b.paths.total_delay(inst.graph);
    }
  }

  if (!a.ok && !b.ok) {
    // Neither orientation found paths meeting even one budget within its
    // guarantee: with a correct solver this certifies that no solution
    // meets both budgets, but we report it as a violation-free failure.
    out.status = KbcpStatus::kFailed;
    return out;
  }

  const auto score = [&](const Attempt& attempt) {
    return std::max(
        factor(static_cast<double>(attempt.cost),
               static_cast<double>(inst.cost_bound)),
        factor(static_cast<double>(attempt.delay),
               static_cast<double>(inst.delay_bound)));
  };
  const Attempt& chosen = !b.ok || (a.ok && score(a) <= score(b)) ? a : b;

  out.paths = chosen.paths;
  out.cost = chosen.cost;
  out.delay = chosen.delay;
  out.cost_factor = factor(static_cast<double>(chosen.cost),
                           static_cast<double>(inst.cost_bound));
  out.delay_factor = factor(static_cast<double>(chosen.delay),
                            static_cast<double>(inst.delay_bound));
  out.status = out.cost_factor <= 1.0 && out.delay_factor <= 1.0
                   ? KbcpStatus::kFeasible
                   : KbcpStatus::kViolates;
  return out;
}

}  // namespace krsp::core

// Explicit construction of the auxiliary layered graphs H_v^+(B) and
// H_v^-(B) of Algorithm 2 (illustrated by Figure 2 of the paper).
//
// Layer ℓ of vertex u represents "accumulated residual cost ℓ relative to
// the anchor's start layer". In H_v^+(B) the anchor starts at layer 0 and
// closing arcs v^ℓ → v^0 certify a cycle of total cost ℓ ∈ [0, B]; in
// H_v^-(B) the anchor starts at layer B and closing arcs v^ℓ → v^B certify
// total cost ℓ − B ∈ [-B, 0]. Every residual edge e = (u, w) with cost c
// induces arcs u^ℓ → w^(ℓ+c) for all ℓ keeping both endpoints in [0, B];
// this uniformly covers the paper's c(e) >= 0 and c(e) < 0 cases.
//
// This explicit form exists for the LP-(6) reference finder and for unit
// tests (including the Figure-2 example); the production bicameral search
// (core/bicameral.h) walks the same graph implicitly without materializing
// it.
#pragma once

#include <vector>

#include "graph/digraph.h"

namespace krsp::core {

class AuxiliaryGraph {
 public:
  /// Builds H_anchor^+(budget) (positive = true) or H_anchor^-(budget)
  /// over an arbitrary signed-weight digraph (typically a residual graph).
  AuxiliaryGraph(const graph::Digraph& base, graph::VertexId anchor,
                 graph::Cost budget, bool positive);

  [[nodiscard]] const graph::Digraph& digraph() const { return h_; }
  [[nodiscard]] graph::Cost budget() const { return budget_; }
  [[nodiscard]] bool positive() const { return positive_; }
  [[nodiscard]] graph::VertexId anchor() const { return anchor_; }
  [[nodiscard]] graph::VertexId start_vertex() const {
    return vertex_of(anchor_, positive_ ? 0 : budget_);
  }

  /// H-vertex for (base vertex, layer).
  [[nodiscard]] graph::VertexId vertex_of(graph::VertexId base_vertex,
                                          graph::Cost layer) const;
  /// Base vertex / layer of an H-vertex.
  [[nodiscard]] graph::VertexId base_vertex_of(graph::VertexId hv) const;
  [[nodiscard]] graph::Cost layer_of(graph::VertexId hv) const;

  /// Base edge behind an H-edge, or kInvalidEdge for anchor closing arcs.
  [[nodiscard]] graph::EdgeId base_edge_of(graph::EdgeId he) const {
    return base_edge_[he];
  }

  /// Projects a cycle of H (sequence of H-edge ids) to the base graph:
  /// closing arcs are dropped, the rest map to their base edges. The result
  /// is a closed walk in the base graph (Lemma 15).
  [[nodiscard]] std::vector<graph::EdgeId> project_cycle(
      std::span<const graph::EdgeId> h_cycle) const;

 private:
  const graph::Digraph& base_;
  graph::VertexId anchor_;
  graph::Cost budget_;
  bool positive_;
  graph::Digraph h_;
  std::vector<graph::EdgeId> base_edge_;
};

}  // namespace krsp::core

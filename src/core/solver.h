// Public solver facade: the paper's full pipeline.
//
//   Mode::kExactWeights — Lemma 3: phase 1, then bicameral cycle
//       cancellation with a binary search on the cost cap Ĉ. Bifactor
//       (1, 2) (delay strictly within D; cost <= 2·Ĉ† with Ĉ† <= C_OPT + 1,
//       see core/bicameral.cc on the strict type-2 rule). Pseudo-polynomial.
//   Mode::kScaled — Theorem 4: delays scaled against D, costs against a
//       guessed Ĉ (outer binary search), exact-weights core on the scaled
//       instance. Bifactor (1+ε1, 2+ε2), polynomial.
//   Mode::kPhase1Only — Lemma 5 only (the [9]-equivalent LP rounding):
//       bifactor (2, 2), delay may exceed D.
#pragma once

#include "core/cycle_cancel.h"
#include "core/instance.h"
#include "core/path_set.h"
#include "core/phase1.h"
#include "util/rational.h"

namespace krsp::core {

enum class SolveStatus {
  kOptimal,           // provably minimum cost within the delay bound
  kApprox,            // approximation guarantee of the selected mode holds
  kApproxDelayOver,   // kPhase1Only: solution valid but delay in (D, 2D]
  kInfeasible,        // no k disjoint paths meet the delay bound
  kNoKDisjointPaths,  // fewer than k edge-disjoint s→t paths exist
  kFailed,            // internal limit tripped (reported, never silent)
};

struct SolverOptions {
  enum class Mode { kExactWeights, kScaled, kPhase1Only };
  Mode mode = Mode::kScaled;
  double eps1 = 0.25;  // delay slack (Theorem 4)
  double eps2 = 0.25;  // cost slack (Theorem 4)

  /// Ĉ search strategy for the cancellation cap. kBinarySearch certifies
  /// the 2·(C_OPT+1) cost bound; kDoubling trades a factor <= 2 on the cap
  /// for fewer cancellation runs.
  enum class GuessStrategy { kBinarySearch, kDoubling };
  GuessStrategy guess = GuessStrategy::kBinarySearch;

  CycleCancelOptions cancel;
};

struct SolveTelemetry {
  double wall_seconds = 0.0;
  int phase1_mcmf_calls = 0;
  util::Rational lambda = 0;            // phase-1 breakpoint λ*
  util::Rational cost_lower_bound = 0;  // certified LP bound on C_OPT
  graph::Cost cost_guess_used = 0;      // final cap Ĉ†
  int guess_attempts = 0;               // cancellation runs across guesses
  bool phase1_was_optimal = false;
  bool used_feasible_fallback = false;  // returned phase-1 F_hi instead
  CycleCancelTelemetry cancel;          // from the final successful run
};

struct Solution {
  SolveStatus status = SolveStatus::kFailed;
  PathSet paths;
  graph::Cost cost = 0;
  graph::Delay delay = 0;
  SolveTelemetry telemetry;

  [[nodiscard]] bool has_paths() const {
    return status == SolveStatus::kOptimal || status == SolveStatus::kApprox ||
           status == SolveStatus::kApproxDelayOver;
  }
};

class KrspSolver {
 public:
  explicit KrspSolver(SolverOptions options = {}) : options_(options) {}

  [[nodiscard]] Solution solve(const Instance& inst) const;

  [[nodiscard]] const SolverOptions& options() const { return options_; }

 private:
  [[nodiscard]] Solution solve_exact_weights(const Instance& inst) const;
  [[nodiscard]] Solution solve_scaled(const Instance& inst) const;
  [[nodiscard]] Solution solve_phase1_only(const Instance& inst) const;

  SolverOptions options_;
};

}  // namespace krsp::core

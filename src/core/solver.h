// Public solver facade: the paper's full pipeline.
//
//   Mode::kExactWeights — Lemma 3: phase 1, then bicameral cycle
//       cancellation with a binary search on the cost cap Ĉ. Bifactor
//       (1, 2) (delay strictly within D; cost <= 2·Ĉ† with Ĉ† <= C_OPT + 1,
//       see core/bicameral.cc on the strict type-2 rule). Pseudo-polynomial.
//   Mode::kScaled — Theorem 4: delays scaled against D, costs against a
//       guessed Ĉ (outer binary search), exact-weights core on the scaled
//       instance. Bifactor (1+ε1, 2+ε2), polynomial.
//   Mode::kPhase1Only — Lemma 5 only (the [9]-equivalent LP rounding):
//       bifactor (2, 2), delay may exceed D.
#pragma once

#include "core/cycle_cancel.h"
#include "core/instance.h"
#include "core/path_set.h"
#include "core/phase1.h"
#include "util/deadline.h"
#include "util/rational.h"

namespace krsp::core {

enum class SolveStatus {
  kOptimal,           // provably minimum cost within the delay bound
  kApprox,            // approximation guarantee of the selected mode holds
  kApproxDelayOver,   // kPhase1Only: solution valid but delay in (D, 2D]
  kInfeasible,        // no k disjoint paths meet the delay bound
  kNoKDisjointPaths,  // fewer than k edge-disjoint s→t paths exist
  kFailed,            // internal limit tripped (reported, never silent)
};

struct SolverOptions {
  enum class Mode { kExactWeights, kScaled, kPhase1Only };
  Mode mode = Mode::kScaled;
  double eps1 = 0.25;  // delay slack (Theorem 4)
  double eps2 = 0.25;  // cost slack (Theorem 4)

  /// Ĉ search strategy for the cancellation cap. kBinarySearch certifies
  /// the 2·(C_OPT+1) cost bound; kDoubling trades a factor <= 2 on the cap
  /// for fewer cancellation runs.
  enum class GuessStrategy { kBinarySearch, kDoubling };
  GuessStrategy guess = GuessStrategy::kBinarySearch;

  /// Wall-clock budget for the whole solve; <= 0 = unbounded. On expiry
  /// the solver walks the anytime degradation ladder (DegradationStep)
  /// instead of running to completion: the result is always structurally
  /// valid and delay-feasible, only the cost guarantee weakens. Expiry is
  /// honored between pipeline iterations, so the overshoot is bounded by
  /// one MCMF call / cancellation round.
  double deadline_seconds = 0.0;
  /// Fraction of the remaining budget granted to phase 1; the rest funds
  /// the cancellation/guess loops. Phase 1's feasibility answers stay
  /// exact regardless (its two bracketing flows always run).
  double phase1_deadline_fraction = 0.4;

  CycleCancelOptions cancel;
};

/// Anytime degradation ladder recorded when a deadline cuts a solve short.
/// Steps are ordered best → worst; the solver emits the first four, the
/// resilience controller the last two (serving fewer paths or none is a
/// provisioning-level decision, not a solver one).
enum class DegradationStep {
  kNone,            // full algorithm completed within budget
  kScaledResult,    // scaled-mode Ĉ search cut short; best verified attempt
  kExactPartial,    // exact-weights cap search cut short; best-so-far cap
  kPhase1Feasible,  // certified-feasible phase-1 fallback F_hi served
  kReducedK,        // controller serves k' < k surviving paths
  kOutage,          // controller declares outage (no valid path set)
};

/// Short stable name for logs and benchmark tables.
const char* degradation_step_name(DegradationStep step);

struct SolveTelemetry {
  double wall_seconds = 0.0;
  int phase1_mcmf_calls = 0;
  util::Rational lambda = 0;            // phase-1 breakpoint λ*
  util::Rational cost_lower_bound = 0;  // certified LP bound on C_OPT
  graph::Cost cost_guess_used = 0;      // final cap Ĉ†
  int guess_attempts = 0;               // cancellation runs across guesses
  bool phase1_was_optimal = false;
  bool used_feasible_fallback = false;  // returned phase-1 F_hi instead
  bool deadline_expired = false;        // a stage hit its wall-clock budget
  DegradationStep degradation = DegradationStep::kNone;
  CycleCancelTelemetry cancel;          // from the final successful run
};

struct Solution {
  SolveStatus status = SolveStatus::kFailed;
  PathSet paths;
  graph::Cost cost = 0;
  graph::Delay delay = 0;
  SolveTelemetry telemetry;

  [[nodiscard]] bool has_paths() const {
    return status == SolveStatus::kOptimal || status == SolveStatus::kApprox ||
           status == SolveStatus::kApproxDelayOver;
  }
};

struct SolveWorkspace;

class KrspSolver {
 public:
  explicit KrspSolver(SolverOptions options = {}) : options_(options) {}

  [[nodiscard]] Solution solve(const Instance& inst) const;

  /// Solve against an absolute deadline (overrides options().deadline_
  /// seconds). Lets callers with an external clock — the scaled wrapper's
  /// inner solver, the resilience controller mid-event — share one budget
  /// across nested solves instead of re-anchoring it.
  [[nodiscard]] Solution solve(const Instance& inst,
                               const util::Deadline& deadline) const;

  /// Solve reusing per-thread scratch (core/workspace.h): allocation-free
  /// hot paths on repeat solves, identical results. `ws` may be nullptr.
  [[nodiscard]] Solution solve(const Instance& inst,
                               const util::Deadline& deadline,
                               SolveWorkspace* ws) const;

  [[nodiscard]] const SolverOptions& options() const { return options_; }

 private:
  [[nodiscard]] Solution solve_exact_weights(const Instance& inst,
                                             const util::Deadline& deadline,
                                             SolveWorkspace* ws) const;
  [[nodiscard]] Solution solve_scaled(const Instance& inst,
                                      const util::Deadline& deadline,
                                      SolveWorkspace* ws) const;
  [[nodiscard]] Solution solve_phase1_only(const Instance& inst,
                                           const util::Deadline& deadline,
                                           SolveWorkspace* ws) const;

  SolverOptions options_;
};

}  // namespace krsp::core

// A candidate kRSP solution: k edge-disjoint s→t paths, with validation and
// the aggregate measures the paper's bounds are stated in.
#pragma once

#include <vector>

#include "core/instance.h"
#include "graph/digraph.h"

namespace krsp::core {

class PathSet {
 public:
  PathSet() = default;
  explicit PathSet(std::vector<std::vector<graph::EdgeId>> paths)
      : paths_(std::move(paths)) {}

  [[nodiscard]] int size() const { return static_cast<int>(paths_.size()); }
  [[nodiscard]] const std::vector<std::vector<graph::EdgeId>>& paths() const {
    return paths_;
  }

  [[nodiscard]] graph::Cost total_cost(const graph::Digraph& g) const;
  [[nodiscard]] graph::Delay total_delay(const graph::Digraph& g) const;

  /// All edges across all paths (paths are edge-disjoint so no duplicates).
  [[nodiscard]] std::vector<graph::EdgeId> all_edges() const;

  /// Full validation against an instance: exactly k paths, each a simple
  /// s→t path, pairwise edge-disjoint. Delay bound is NOT checked here
  /// (approximation algorithms may exceed it by design); use
  /// satisfies_delay().
  [[nodiscard]] bool is_valid(const Instance& inst, std::string* why =
                                                        nullptr) const;

  [[nodiscard]] bool satisfies_delay(const Instance& inst) const {
    return total_delay(inst.graph) <= inst.delay_bound;
  }

 private:
  std::vector<std::vector<graph::EdgeId>> paths_;
};

}  // namespace krsp::core

#include "core/cycle_cancel.h"

#include <algorithm>

#include "flow/decompose.h"
#include "obs/trace.h"

namespace krsp::core {

CycleCancelResult cancel_cycles(const Instance& inst, const PathSet& start,
                                graph::Cost cost_guess,
                                const CycleCancelOptions& options,
                                BicameralWorkspace* finder_ws) {
  inst.validate();
  std::string why;
  KRSP_CHECK_MSG(start.is_valid(inst, &why), "cancel_cycles start: " << why);

  CycleCancelResult out;
  out.paths = start;
  out.cost = start.total_cost(inst.graph);
  out.delay = start.total_delay(inst.graph);

  std::int64_t max_iterations = options.max_iterations;
  if (max_iterations <= 0) {
    // Lemma 13 bound |D|·Σc·Σd is astronomically loose; in practice the
    // iteration count is small (bench_iterations measures it). Cap the
    // safety valve generously.
    max_iterations = 100000;
  }

  const BicameralCycleFinder finder(options.finder);
  // One residual graph rebuilt in place per round: the digraph's adjacency
  // storage survives across iterations (same shape every time).
  std::optional<ResidualGraph> residual;
  while (out.delay > inst.delay_bound) {
    KRSP_OBS_SPAN("cycle_cancel_round");
    if (out.telemetry.iterations >= max_iterations) {
      out.status = CancelStatus::kIterationLimit;
      return out;
    }
    if (options.deadline.expired()) {
      out.status = CancelStatus::kDeadlineExpired;
      return out;
    }

    BicameralQuery query;
    query.cap = cost_guess;
    query.enforce_cap = !options.unsafe_no_cap;
    if (options.unsafe_no_cap) {
      // Ratio 0 admits every delay-reducing cycle; selection then favors
      // the best ratio — exactly the uncapped greedy of Figure 1.
      query.ratio = util::Rational(0);
    } else {
      const graph::Delay delta_d = inst.delay_bound - out.delay;  // < 0
      const graph::Cost delta_c = cost_guess - out.cost;
      if (delta_c <= 0) {
        // Cap exhausted: by Lemma 11's invariant this means Ĉ < C_OPT (the
        // caller's guess is too small) or the instance is infeasible.
        out.status = CancelStatus::kNoBicameralCycle;
        return out;
      }
      query.ratio = util::Rational(delta_d, delta_c);
      out.telemetry.ratio_trace.push_back(query.ratio);
      const auto k = out.telemetry.ratio_trace.size();
      if (k >= 2 &&
          out.telemetry.ratio_trace[k - 1] < out.telemetry.ratio_trace[k - 2])
        out.telemetry.ratio_monotone = false;
    }

    if (!residual) {
      residual.emplace(inst.graph, out.paths.all_edges());
    } else {
      residual->rebuild(out.paths.all_edges());
    }
    // The finder is this implementation's RSP oracle: each round delegates
    // the restricted (cost-capped) negative-cycle search to the bicameral
    // walk DP over the residual graph, the role Algorithm 1 assigns to an
    // RSP invocation.
    const auto cycle = [&] {
      KRSP_OBS_SPAN("rsp_oracle");
      return finder.find(*residual, query, &out.telemetry.finder_stats,
                         finder_ws);
    }();
    if (!cycle) {
      out.status = CancelStatus::kNoBicameralCycle;
      return out;
    }
    ++out.telemetry.type_counts[static_cast<int>(cycle->type)];
    ++out.telemetry.iterations;

    const auto new_edges = residual->apply_cycle(cycle->edges);
    auto decomposition =
        flow::decompose_unit_flow(inst.graph, new_edges, inst.s, inst.t,
                                  inst.k);
    // Leftover cycles carry non-negative cost and delay (original weights);
    // dropping them never hurts either bound.
    out.paths = PathSet(std::move(decomposition.paths));
    out.cost = out.paths.total_cost(inst.graph);
    out.delay = out.paths.total_delay(inst.graph);
  }
  out.status = CancelStatus::kSuccess;
  return out;
}

}  // namespace krsp::core

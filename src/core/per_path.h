// The original k disjoint QoS path problem (Definition 1): every path must
// individually satisfy delay <= D. NP-hard even to satisfy the constraint
// ([16], cited in §1.1), which is exactly why the paper relaxes it to the
// total-delay kRSP (Definition 2). This module closes the loop with a
// practical heuristic on top of the kRSP solver:
//
//   binary-search the *total* budget T in [k·min-possible-average, k·D];
//   solve kRSP(T); accept when every individual path meets D.
//
// Smaller T forces the solution toward uniformly fast paths, so the
// predicate is monotone in practice (not in theory — this is a heuristic
// and is documented as such; the result is *verified*, never assumed).
// When it succeeds the output is a certified Definition-1-feasible
// solution with cost within the kRSP guarantee of the accepted budget.
#pragma once

#include "core/solver.h"

namespace krsp::core {

enum class PerPathStatus {
  kFeasible,          // all paths individually within the bound
  kHeuristicFailed,   // no tried budget produced a per-path-feasible set
  kNoKDisjointPaths,
  kInfeasible,        // even the min-delay flow violates some per-path bound
};

struct PerPathResult {
  PerPathStatus status = PerPathStatus::kHeuristicFailed;
  PathSet paths;
  graph::Cost cost = 0;
  graph::Delay max_path_delay = 0;
  graph::Delay total_delay = 0;
  int budgets_tried = 0;
};

/// Solves Definition 1 heuristically: k disjoint paths, each with delay
/// <= per_path_bound, cost minimized within the kRSP guarantee envelope.
PerPathResult solve_per_path(const graph::Digraph& g, graph::VertexId s,
                             graph::VertexId t, int k,
                             graph::Delay per_path_bound,
                             const SolverOptions& options = {});

}  // namespace krsp::core

#include "core/scaling.h"

#include <cmath>

namespace krsp::core {

ScaledInstance scale_instance(const Instance& inst, double eps1, double eps2,
                              graph::Cost cost_guess) {
  KRSP_CHECK(eps1 > 0 && eps2 > 0);
  ScaledInstance out;
  out.scaled.s = inst.s;
  out.scaled.t = inst.t;
  out.scaled.k = inst.k;
  out.scaled.delay_bound = inst.delay_bound;

  const auto kn = static_cast<double>(inst.k) *
                  static_cast<double>(inst.graph.num_vertices());
  const auto s_d = static_cast<std::int64_t>(std::ceil(kn / eps1));
  const auto s_c = static_cast<std::int64_t>(std::ceil(kn / eps2));

  if (inst.delay_bound > 0 && s_d < inst.delay_bound) {
    out.delay_scaled = true;
    out.delay_num = s_d;
    out.delay_den = inst.delay_bound;
    out.scaled.delay_bound = s_d;
  }
  if (cost_guess > 0 && s_c < cost_guess) {
    out.cost_scaled = true;
    out.cost_num = s_c;
    out.cost_den = cost_guess;
  }

  out.scaled.graph.resize(inst.graph.num_vertices());
  for (const auto& e : inst.graph.edges()) {
    const graph::Delay d =
        out.delay_scaled ? (e.delay * out.delay_num) / out.delay_den : e.delay;
    const graph::Cost c =
        out.cost_scaled ? (e.cost * out.cost_num) / out.cost_den : e.cost;
    out.scaled.graph.add_edge(e.from, e.to, c, d);
  }
  return out;
}

}  // namespace krsp::core

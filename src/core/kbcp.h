// k disjoint Bi-Constrained Paths (kBCP, §1.2 of the paper): k edge-
// disjoint s→t paths with Σcost <= C and Σdelay <= D (a feasibility-style
// problem, weaker than kRSP — "all approximations of kRSP can be adopted
// to solve kBCP, but not the other way around").
//
// This module does exactly that adoption: it runs the kRSP solver in both
// orientations (min cost s.t. delay <= D, and — with the measures swapped —
// min delay s.t. cost <= C) and returns the attempt with the smallest
// worst-constraint violation. On feasible instances one orientation always
// lands within the kRSP guarantee of its budget, so the returned violation
// factors inherit the (1+ε1, 2+ε2) bounds. A library extension mirroring
// [12]'s problem statement.
#pragma once

#include "core/solver.h"

namespace krsp::core {

struct KbcpInstance {
  graph::Digraph graph;
  graph::VertexId s = graph::kInvalidVertex;
  graph::VertexId t = graph::kInvalidVertex;
  int k = 1;
  graph::Cost cost_bound = 0;   // C
  graph::Delay delay_bound = 0;  // D
};

enum class KbcpStatus {
  kFeasible,          // both budgets met
  kViolates,          // paths returned; see violation factors
  kNoKDisjointPaths,  // structural failure
  kFailed,
};

struct KbcpResult {
  KbcpStatus status = KbcpStatus::kFailed;
  PathSet paths;
  graph::Cost cost = 0;
  graph::Delay delay = 0;
  /// cost / C and delay / D of the returned paths (1.0 = exactly at the
  /// budget). Meaningful for kFeasible / kViolates.
  double cost_factor = 0.0;
  double delay_factor = 0.0;
};

KbcpResult solve_kbcp(const KbcpInstance& inst,
                      const SolverOptions& options = {});

}  // namespace krsp::core

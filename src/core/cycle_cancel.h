// Algorithm 1: improve a phase-1 solution by repeated bicameral cycle
// cancellation until the delay bound is met.
//
// The driver maintains the k disjoint paths as a unit flow edge set,
// rebuilds the residual graph (Definition 6) each iteration, queries the
// bicameral finder with the live ratio r_i = ΔD_i/ΔC_i and the cost cap Ĉ
// (the caller's certified guess for C_OPT), applies F ⊕ O (Proposition 7),
// and re-decomposes into k simple disjoint paths. Telemetry records the
// r_i trace — Lemma 12 predicts it is non-decreasing — and the cycle type
// mix, both checked by tests and reported by bench_iterations.
#pragma once

#include <vector>

#include "core/bicameral.h"
#include "core/instance.h"
#include "core/path_set.h"
#include "util/deadline.h"
#include "util/rational.h"

namespace krsp::core {

enum class CancelStatus {
  kSuccess,           // delay bound met
  kNoBicameralCycle,  // no qualifying cycle (infeasible, or guess Ĉ < C_OPT)
  kIterationLimit,    // safety valve tripped
  kDeadlineExpired,   // wall-clock budget ran out mid-cancellation
};

struct CycleCancelOptions {
  BicameralCycleFinder::Options finder;
  /// 0 = derive a generous bound from Lemma 13, capped at 100000.
  std::int64_t max_iterations = 0;
  /// Ablation: drop the Definition-10 cost cap and ratio test and greedily
  /// take the best-ratio delay-reducing cycle (the Figure-1 pathology).
  bool unsafe_no_cap = false;
  /// Wall-clock budget, checked before each cancellation round. On expiry
  /// the driver returns kDeadlineExpired with the current (valid, possibly
  /// still delay-infeasible) paths — an anytime intermediate, never an
  /// invalid set. Unbounded by default.
  util::Deadline deadline;
};

struct CycleCancelTelemetry {
  std::int64_t iterations = 0;
  std::int64_t type_counts[3] = {0, 0, 0};  // indexed by CycleType
  std::vector<util::Rational> ratio_trace;  // r_i per iteration (ΔC_i > 0)
  bool ratio_monotone = true;               // Lemma 12 check
  /// Accumulated over every finder call of the cancellation run: counters
  /// (anchors scanned/pruned, walks, budgets, SCCs skipped) sum across
  /// rounds, while peak_dp_bytes stays a max — it is a high-water memory
  /// mark, and summing table sizes across rounds would be meaningless.
  BicameralStats finder_stats;
};

struct CycleCancelResult {
  CancelStatus status = CancelStatus::kNoBicameralCycle;
  PathSet paths;
  graph::Cost cost = 0;
  graph::Delay delay = 0;
  CycleCancelTelemetry telemetry;
};

/// Runs Algorithm 1 from `start` (k disjoint paths, possibly delay-
/// infeasible) with cost cap `cost_guess`. On kSuccess the returned paths
/// satisfy the delay bound and cost <= start-cost-path + Ĉ (Lemma 11 gives
/// <= 2·Ĉ when start comes from phase 1 and Ĉ >= C_OPT). `finder_ws`
/// (optional) reuses the bicameral finder's DP tables across rounds and
/// across solves; results are identical with or without it.
CycleCancelResult cancel_cycles(const Instance& inst, const PathSet& start,
                                graph::Cost cost_guess,
                                const CycleCancelOptions& options = {},
                                BicameralWorkspace* finder_ws = nullptr);

}  // namespace krsp::core

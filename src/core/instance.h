// Problem instance type for kRSP (Definition 2 in the paper) plus
// construction helpers used across tests, benchmarks and examples.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "graph/digraph.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace krsp::core {

struct Instance {
  graph::Digraph graph;
  graph::VertexId s = graph::kInvalidVertex;
  graph::VertexId t = graph::kInvalidVertex;
  int k = 1;
  graph::Delay delay_bound = 0;  // D

  /// Structural sanity: vertices exist, s != t, k >= 1, D >= 0, and all
  /// edge costs/delays non-negative (the paper's model). Throws CheckError
  /// on violation.
  void validate() const;

  [[nodiscard]] std::string summary() const;
};

/// True iff the graph admits k edge-disjoint s→t paths at all (ignoring the
/// delay bound) — a necessary condition for feasibility.
bool has_k_disjoint_paths(const Instance& inst);

/// Delay of the best (min-total-delay) k disjoint paths, or nullopt if
/// fewer than k disjoint paths exist. The instance is feasible iff this is
/// <= delay_bound.
std::optional<graph::Delay> min_possible_delay(const Instance& inst);

/// How a random instance's delay bound is chosen relative to the
/// min-delay/min-cost extremes: tight bounds force cycle cancellation to
/// work, loose bounds are often satisfied by the min-cost flow directly.
struct RandomInstanceOptions {
  int k = 2;
  /// D = min_delay + slack * (delay(min-cost flow) - min_delay), clamped to
  /// at least min_delay. slack in [0, 1]: 0 = tightest feasible, 1 = free.
  double delay_slack = 0.3;
  int max_attempts = 64;
  /// Terminal overrides; kInvalidVertex = defaults (0 and n-1). Needed for
  /// generators whose default corners lack degree k (e.g. grids).
  graph::VertexId s = graph::kInvalidVertex;
  graph::VertexId t = graph::kInvalidVertex;
};

/// Draws graphs from `draw` until one admits k disjoint s→t paths, then
/// sets the delay bound per options. s = 0 and t = num_vertices-1 by
/// default (overridable by the draw callback's graph shape). Returns
/// nullopt if max_attempts graphs all lack k disjoint paths.
std::optional<Instance> make_random_instance(
    util::Rng& rng, const RandomInstanceOptions& options,
    const std::function<graph::Digraph(util::Rng&)>& draw);

/// Convenience: random Erdős–Rényi instance.
std::optional<Instance> random_er_instance(util::Rng& rng, int n, double p,
                                           const RandomInstanceOptions& opt,
                                           const gen::WeightRange& w = {});

}  // namespace krsp::core

#include "core/vertex_disjoint.h"

#include "graph/transform.h"

namespace krsp::core {

Solution solve_vertex_disjoint(const Instance& inst,
                               const SolverOptions& options) {
  inst.validate();
  const graph::SplitGraph split(inst.graph);

  Instance split_inst;
  split_inst.graph = split.digraph();
  split_inst.s = split.out_vertex(inst.s);  // leave s without its gate so k
  split_inst.t = split.in_vertex(inst.t);   // paths may share the terminals
  split_inst.k = inst.k;
  split_inst.delay_bound = inst.delay_bound;

  Solution solution = KrspSolver(options).solve(split_inst);
  if (!solution.has_paths()) return solution;

  // Project back to base edges; measures are unchanged (gates are free).
  std::vector<std::vector<graph::EdgeId>> base_paths;
  for (const auto& p : solution.paths.paths())
    base_paths.push_back(split.project_path(p));
  solution.paths = PathSet(std::move(base_paths));
  KRSP_CHECK(solution.paths.total_cost(inst.graph) == solution.cost);
  KRSP_CHECK(solution.paths.total_delay(inst.graph) == solution.delay);
  std::string why;
  KRSP_CHECK_MSG(solution.paths.is_valid(inst, &why),
                 "vertex-disjoint projection produced invalid paths: " << why);
  return solution;
}

}  // namespace krsp::core

#include "core/per_path.h"

#include <algorithm>

#include "core/instance.h"

namespace krsp::core {

namespace {

graph::Delay max_path_delay(const graph::Digraph& g, const PathSet& paths) {
  graph::Delay worst = 0;
  for (const auto& p : paths.paths())
    worst = std::max(worst, graph::path_delay(g, p));
  return worst;
}

}  // namespace

PerPathResult solve_per_path(const graph::Digraph& g, graph::VertexId s,
                             graph::VertexId t, int k,
                             graph::Delay per_path_bound,
                             const SolverOptions& options) {
  KRSP_CHECK(per_path_bound >= 0);
  PerPathResult out;

  Instance inst;
  inst.graph = g;
  inst.s = s;
  inst.t = t;
  inst.k = k;

  // Floor of the search: the min-total-delay flow. If even it violates the
  // per-path bound, declare (heuristic) infeasibility — note Definition 1
  // could still be feasible in exotic cases, but no kRSP budget will help.
  const auto min_total = min_possible_delay(inst);
  if (!min_total) {
    out.status = PerPathStatus::kNoKDisjointPaths;
    return out;
  }
  const KrspSolver solver(options);

  const auto attempt = [&](graph::Delay budget)
      -> std::optional<PerPathResult> {
    Instance trial = inst;
    trial.delay_bound = budget;
    ++out.budgets_tried;
    const auto solution = solver.solve(trial);
    if (!solution.has_paths()) return std::nullopt;
    PerPathResult r;
    r.paths = solution.paths;
    r.cost = solution.cost;
    r.total_delay = solution.delay;
    r.max_path_delay = max_path_delay(g, solution.paths);
    r.status = r.max_path_delay <= per_path_bound
                   ? PerPathStatus::kFeasible
                   : PerPathStatus::kHeuristicFailed;
    return r;
  };

  // Binary search the smallest total budget whose solution is per-path
  // feasible; keep the cheapest feasible hit (cost rises as T shrinks).
  graph::Delay lo = *min_total;
  graph::Delay hi = std::max<graph::Delay>(lo, per_path_bound * k);
  std::optional<PerPathResult> best;
  while (lo <= hi) {
    const graph::Delay mid = lo + (hi - lo) / 2;
    const auto r = attempt(mid);
    if (r && r->status == PerPathStatus::kFeasible) {
      if (!best || r->cost < best->cost) best = *r;
      lo = mid + 1;  // try looser budgets: cheaper solutions may also fit
    } else {
      hi = mid - 1;
    }
    if (out.budgets_tried > 40) break;  // search is logarithmic; safety
  }
  if (best) {
    best->budgets_tried = out.budgets_tried;
    return *best;
  }

  // Tightest budget failed: report whether that is structural.
  const auto floor_attempt = attempt(*min_total);
  if (floor_attempt && floor_attempt->status == PerPathStatus::kFeasible)
    return *floor_attempt;  // (race-free re-check; unlikely path)
  out.status = floor_attempt ? PerPathStatus::kInfeasible
                             : PerPathStatus::kHeuristicFailed;
  return out;
}

}  // namespace krsp::core

// Residual graph of Definition 6 and the ⊕ cycle-cancellation step of
// Proposition 7.
//
// Given the current solution's edge set F (the union of k disjoint paths),
// the residual graph G̃ contains every non-flow edge forward with its
// original weights and every flow edge reversed with *negated* cost and
// delay — unlike the zero-cost reversal of [12, 18], which is exactly the
// novelty the bicameral machinery addresses. A residual cycle O applied via
// F ⊕ O yields a new union of k disjoint paths whose cost/delay shift by
// (c(O), d(O)).
#pragma once

#include <unordered_set>
#include <vector>

#include "core/instance.h"
#include "core/path_set.h"
#include "graph/digraph.h"

namespace krsp::core {

class ResidualGraph {
 public:
  /// Builds G̃ for graph g with respect to the flow edge set `flow_edges`
  /// (must be a subset of g's edges; typically PathSet::all_edges()).
  ResidualGraph(const graph::Digraph& g,
                const std::vector<graph::EdgeId>& flow_edges);

  /// Rebuilds G̃ in place for a new flow edge set of the same original
  /// graph, reusing the residual digraph's storage. The cancellation driver
  /// calls this once per iteration instead of constructing a fresh
  /// ResidualGraph.
  void rebuild(const std::vector<graph::EdgeId>& flow_edges);

  [[nodiscard]] const graph::Digraph& digraph() const { return residual_; }

  /// Original edge behind residual edge `re`.
  [[nodiscard]] graph::EdgeId original_edge(graph::EdgeId re) const {
    return tags_[re].orig;
  }
  /// True iff residual edge `re` is a reversed (negated) flow edge.
  [[nodiscard]] bool is_reversed(graph::EdgeId re) const {
    return tags_[re].reversed;
  }

  /// Residual edges with cost < 0 or delay < 0, ascending by edge id,
  /// maintained incrementally by rebuild. Every Definition-10-qualifying
  /// cycle contains at least one of these arcs (its negative total cost or
  /// delay needs a negative term), which is what lets the bicameral finder
  /// seed its anchored DPs at their endpoints instead of scanning all n
  /// vertices — see core/bicameral.cc and DESIGN.md §3.
  [[nodiscard]] std::span<const graph::EdgeId> negative_arcs() const {
    return negative_arcs_;
  }

  /// Cost/delay of a residual edge set (already sign-adjusted).
  [[nodiscard]] graph::Cost cycle_cost(
      std::span<const graph::EdgeId> residual_edges) const;
  [[nodiscard]] graph::Delay cycle_delay(
      std::span<const graph::EdgeId> residual_edges) const;

  /// F ⊕ O: applies a residual cycle to the flow edge set this residual was
  /// built from and returns the new flow edge set. KRSP_CHECKs that forward
  /// residual edges are not already in F and reversed ones are.
  [[nodiscard]] std::vector<graph::EdgeId> apply_cycle(
      std::span<const graph::EdgeId> residual_cycle) const;

 private:
  struct Tag {
    graph::EdgeId orig = graph::kInvalidEdge;
    bool reversed = false;
  };

  const graph::Digraph& original_;
  std::unordered_set<graph::EdgeId> flow_;
  graph::Digraph residual_;
  std::vector<Tag> tags_;
  std::vector<graph::EdgeId> negative_arcs_;
};

/// The cycle system {P*} ⊕ {P̄} of Proposition 8: the symmetric difference
/// of two k-path edge sets, expressed as residual edges of the residual
/// graph built from `current`, decomposed into edge-disjoint simple cycles.
/// Used by tests (Prop. 8 / Lemma 9) and by the brute-force analyzer.
std::vector<std::vector<graph::EdgeId>> difference_cycles(
    const ResidualGraph& residual, const std::vector<graph::EdgeId>& current,
    const std::vector<graph::EdgeId>& target);

}  // namespace krsp::core

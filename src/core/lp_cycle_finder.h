// Reference implementation of Algorithm 3's LP route: build the auxiliary
// graphs H_v^±(B) explicitly (Algorithm 2), solve LP (6)
//     min Σ c(e)·x(e)   s.t.  flow conservation,  Σ d(e)·x(e) <= ΔD
// with the library's simplex, decompose the optimal fractional circulation
// into cycles, project them back to the residual graph (Lemma 15), and pick
// a bicameral cycle per Definition 10.
//
// This path is exponentially more expensive than the implicit search in
// core/bicameral.h and exists for fidelity and cross-validation: property
// tests assert both finders agree on qualification (both find a bicameral
// cycle, or neither does) on small instances.
#pragma once

#include <optional>

#include "core/bicameral.h"
#include "core/residual.h"

namespace krsp::core {

class LpCycleFinder {
 public:
  struct Options {
    /// Cap on the auxiliary budget to keep the LPs tractable in tests.
    graph::Cost max_budget = 16;
  };

  LpCycleFinder() : options_(Options{}) {}
  explicit LpCycleFinder(Options options) : options_(options) {}

  /// Finds a bicameral cycle per `query`, additionally honoring the live
  /// delay slack ΔD (= D - current delay, negative) that LP (6) requires.
  [[nodiscard]] std::optional<FoundCycle> find(const ResidualGraph& residual,
                                               const BicameralQuery& query,
                                               graph::Delay delta_d) const;

 private:
  Options options_;
};

}  // namespace krsp::core

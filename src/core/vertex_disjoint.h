// Vertex-disjoint kRSP: k internally vertex-disjoint s→t paths, total cost
// minimized, total delay within D.
//
// Solved by the standard vertex-splitting reduction (graph/transform.h):
// unit-capacity gates v_in → v_out make edge-disjointness in the split
// graph equal internal-vertex-disjointness in the base graph, so the
// paper's edge-disjoint algorithm applies verbatim with the same bifactor
// guarantees. A library extension beyond the brief announcement's scope,
// covering the common survivability requirement (router failures, not just
// link failures).
#pragma once

#include "core/solver.h"

namespace krsp::core {

/// Solves the vertex-disjoint variant of `inst` with the given solver
/// options. Returned paths are in the *base* graph's edge ids and are
/// internally vertex-disjoint (s and t are shared, as usual).
Solution solve_vertex_disjoint(const Instance& inst,
                               const SolverOptions& options = {});

}  // namespace krsp::core

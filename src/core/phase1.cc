#include "core/phase1.h"

#include <utility>

#include "flow/disjoint.h"
#include "obs/trace.h"

namespace krsp::core {

namespace {

using flow::DisjointPaths;
using util::Rational;

struct Candidate {
  DisjointPaths flow;
  graph::Cost cost() const { return flow.total_cost; }
  graph::Delay delay() const { return flow.total_delay; }
};

}  // namespace

Phase1Result phase1_lagrangian(const Instance& inst,
                               const util::Deadline& deadline,
                               flow::McfWorkspace* ws) {
  KRSP_OBS_SPAN("phase1");
  inst.validate();
  Phase1Result out;

  const auto kflow = [&](std::int64_t w_cost,
                         std::int64_t w_delay) -> std::optional<Candidate> {
    ++out.mcmf_calls;
    auto f = flow::min_weight_disjoint_paths(inst.graph, inst.s, inst.t,
                                             inst.k, w_cost, w_delay, ws);
    if (!f) return std::nullopt;
    return Candidate{std::move(*f)};
  };

  // Min-cost flow, ignoring delay. Among min-cost flows prefer low delay
  // (lexicographic tie-break) so loose budgets are recognized as optimal.
  const graph::Cost cost_sum = inst.graph.total_cost();
  const graph::Delay delay_sum = inst.graph.total_delay();
  auto f_cost = kflow(delay_sum + 1, 1);
  if (!f_cost) {
    out.status = Phase1Status::kNoKDisjointPaths;
    return out;
  }
  if (f_cost->delay() <= inst.delay_bound) {
    out.status = Phase1Status::kOptimal;
    out.paths = PathSet(std::move(f_cost->flow.paths));
    out.cost = f_cost->cost();
    out.delay = f_cost->delay();
    out.cost_lower_bound = Rational(out.cost);
    out.lambda = Rational(0);
    out.feasible_alternative = out.paths;
    return out;
  }

  // Min-delay flow (cost as tie-break). Infeasible if even this misses D.
  auto f_delay = kflow(1, cost_sum + 1);
  KRSP_CHECK(f_delay.has_value());
  if (f_delay->delay() > inst.delay_bound) {
    out.status = Phase1Status::kInfeasible;
    return out;
  }

  // LARAC on λ: F_lo is the infeasible low-cost side, F_hi the feasible
  // higher-cost side. λ is the (exact, rational) slope between them.
  Candidate f_lo = std::move(*f_cost);
  Candidate f_hi = std::move(*f_delay);
  Rational lambda(0);
  constexpr int kMaxIterations = 500;
  for (int iter = 0;; ++iter) {
    KRSP_CHECK_MSG(iter < kMaxIterations, "LARAC failed to converge");
    if (deadline.expired()) {
      out.deadline_hit = true;
      break;
    }
    KRSP_CHECK(f_lo.delay() > f_hi.delay());
    lambda = Rational(f_hi.cost() - f_lo.cost(), f_lo.delay() - f_hi.delay());
    KRSP_CHECK(lambda >= Rational(0));
    const std::int64_t q = lambda.den();
    const std::int64_t p = lambda.num();
    auto f = kflow(q, p);
    KRSP_CHECK(f.has_value());
    const auto combined = [&](const Candidate& c) {
      return q * c.cost() + p * c.delay();
    };
    if (combined(*f) >= combined(f_lo)) break;  // λ* found (line supported)
    if (f->delay() > inst.delay_bound) {
      f_lo = std::move(*f);
    } else {
      f_hi = std::move(*f);
    }
  }

  // Dual value at λ*: the certified LP lower bound on C_OPT.
  const Rational lb = Rational(f_lo.cost()) +
                      lambda * Rational(f_lo.delay() - inst.delay_bound);
  KRSP_CHECK(lb >= Rational(0));

  // Select the candidate minimizing d/D + c/LB (Lemma 5 score). With D > 0
  // and LB > 0 compare exactly via rationals; degenerate cases fall back to
  // the feasible candidate, which is then provably optimal or trivially the
  // right answer (see header).
  const Candidate* chosen = &f_hi;
  if (inst.delay_bound > 0 && !lb.is_zero()) {
    const auto score = [&](const Candidate& c) {
      return Rational(c.delay(), inst.delay_bound) + Rational(c.cost()) / lb;
    };
    if (score(f_lo) < score(f_hi)) chosen = &f_lo;
  }

  out.status = Phase1Status::kApprox;
  out.cost = chosen->cost();
  out.delay = chosen->delay();
  out.cost_lower_bound = lb;
  out.lambda = lambda;
  out.feasible_alternative = PathSet(f_hi.flow.paths);
  // Note: `chosen` may alias f_hi; copy before any move.
  out.paths = PathSet(chosen->flow.paths);
  return out;
}

}  // namespace krsp::core

#include "core/bicameral.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "graph/csr.h"
#include "graph/cycles.h"

namespace krsp::core {

namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();

// Flattened (vertex, layer) product state.
struct StateSpace {
  int n = 0;
  graph::Cost budget = 0;

  [[nodiscard]] int num_states() const {
    return static_cast<int>(n * (budget + 1));
  }
  [[nodiscard]] int state(graph::VertexId v, graph::Cost layer) const {
    return static_cast<int>(v * (budget + 1) + layer);
  }
};

// Per-anchor scratch: the j-edges Bellman–Ford tables over the product
// states, reused across anchors within one thread (and, via
// BicameralWorkspace, across find() calls).
struct Scratch {
  std::vector<std::vector<std::int64_t>> dist;
  std::vector<std::vector<int>> parent_state;
  std::vector<std::vector<graph::EdgeId>> parent_edge;
  // Per-anchor working buffers (see scan_anchor), kept here so they reuse
  // their storage too.
  std::vector<std::int64_t> best_seen;
  std::vector<graph::EdgeId> walk;

  int rounds = -1;
  int num_states = -1;

  /// Ensures the tables cover (rounds, num_states) and clears dist. Parent
  /// entries are never read unless the matching dist entry was written in
  /// the current scan, so they need no clearing.
  void resize(int new_rounds, int new_num_states) {
    if (new_rounds != rounds || new_num_states != num_states) {
      dist.assign(new_rounds + 1,
                  std::vector<std::int64_t>(new_num_states, kInf));
      parent_state.assign(new_rounds + 1, std::vector<int>(new_num_states, -1));
      parent_edge.assign(new_rounds + 1, std::vector<graph::EdgeId>(
                                             new_num_states,
                                             graph::kInvalidEdge));
      rounds = new_rounds;
      num_states = new_num_states;
    }
    // Matching dimensions need no work: scan_anchor resets dist per anchor.
  }

  void reset() {
    for (auto& row : dist) std::fill(row.begin(), row.end(), kInf);
  }
};

struct AnchorStats {
  std::int64_t walks = 0;
  std::int64_t cycles = 0;
};

// Candidate tracker with deterministic preference: type-0 wins outright,
// then best (most useful) ratio per type. Merging trackers in a fixed
// order keeps the parallel scan's result identical to the serial one.
struct Tracker {
  std::optional<FoundCycle> type0;
  std::optional<FoundCycle> t1;
  util::Rational t1_ratio{0};
  std::optional<FoundCycle> t2;
  util::Rational t2_ratio{0};

  void consider(FoundCycle found) {
    switch (found.type) {
      case CycleType::kType0:
        if (!type0) type0 = std::move(found);
        break;
      case CycleType::kType1: {
        const util::Rational r(found.delay, found.cost);
        if (!t1 || r < t1_ratio) {
          t1_ratio = r;
          t1 = std::move(found);
        }
        break;
      }
      case CycleType::kType2: {
        const util::Rational r(found.delay, found.cost);
        if (!t2 || r > t2_ratio) {
          t2_ratio = r;
          t2 = std::move(found);
        }
        break;
      }
    }
  }

  void merge(Tracker&& other) {
    if (other.type0 && !type0) type0 = std::move(other.type0);
    if (other.t1) {
      if (!t1 || other.t1_ratio < t1_ratio) {
        t1 = std::move(other.t1);
        t1_ratio = other.t1_ratio;
      }
    }
    if (other.t2) {
      if (!t2 || other.t2_ratio > t2_ratio) {
        t2 = std::move(other.t2);
        t2_ratio = other.t2_ratio;
      }
    }
  }
};

// Runs the anchored layered Bellman–Ford for one (anchor, sign) pair and
// feeds decomposed candidate cycles into the tracker. Candidates are
// harvested after every round; when `stop_on_first` is set (the capped
// algorithm — any qualifying cycle suffices for Lemma 12) the DP stops as
// soon as this anchor has produced one, which keeps the common short-cycle
// case far below the worst-case n rounds. The per-anchor decision never
// depends on other anchors, so the parallel scan stays deterministic.
void scan_anchor(const ResidualGraph& residual, const graph::CsrView& csr,
                 const StateSpace& ss, graph::VertexId anchor,
                 graph::Cost start_layer, int rounds,
                 const BicameralQuery& query, bool stop_on_first,
                 Scratch& scratch, Tracker& tracker, AnchorStats& stats) {
  const graph::Digraph& rg = residual.digraph();
  const int n = rg.num_vertices();
  scratch.reset();
  const int start = ss.state(anchor, start_layer);
  scratch.dist[0][start] = 0;

  // Best walk delay seen per anchor layer (so each improvement is
  // reconstructed at most once).
  auto& best_seen = scratch.best_seen;
  best_seen.assign(ss.budget + 1, kInf);

  const auto harvest = [&](int j, graph::Cost l) {
    ++stats.walks;
    auto& walk = scratch.walk;
    walk.clear();
    int state = ss.state(anchor, l);
    for (int step = j; step > 0; --step) {
      const graph::EdgeId e = scratch.parent_edge[step][state];
      KRSP_CHECK(e != graph::kInvalidEdge);
      walk.push_back(e);
      state = scratch.parent_state[step][state];
    }
    KRSP_CHECK(state == start);
    std::reverse(walk.begin(), walk.end());
    for (auto& cycle : graph::decompose_closed_walk(rg, walk)) {
      ++stats.cycles;
      const graph::Cost c = residual.cycle_cost(cycle);
      const graph::Delay d = residual.cycle_delay(cycle);
      const auto type = BicameralCycleFinder::classify(
          c, d, query.cap, query.ratio, query.enforce_cap);
      if (type) tracker.consider(FoundCycle{std::move(cycle), c, d, *type});
    }
  };

  for (int j = 1; j <= rounds; ++j) {
    bool any = false;
    const auto& prev = scratch.dist[j - 1];
    auto& cur = scratch.dist[j];
    for (graph::VertexId u = 0; u < n; ++u) {
      const auto arcs = csr.out(u);
      if (arcs.empty()) continue;
      for (graph::Cost l = 0; l <= ss.budget; ++l) {
        const std::int64_t base = prev[ss.state(u, l)];
        if (base == kInf) continue;
        for (const auto& arc : arcs) {
          const graph::Cost l2 = l + arc.cost;
          if (l2 < 0 || l2 > ss.budget) continue;
          const int to = ss.state(arc.to, l2);
          const std::int64_t nd = base + arc.delay;
          if (nd < cur[to]) {
            cur[to] = nd;
            scratch.parent_state[j][to] = ss.state(u, l);
            scratch.parent_edge[j][to] = arc.id;
            any = true;
          }
        }
      }
    }
    if (!any) break;
    // Harvest improved closed walks back at the anchor. Only walks that can
    // host a qualifying cycle are interesting: negative delay (type-0/1
    // material) or negative cost (type-0/2 material).
    for (graph::Cost l = 0; l <= ss.budget; ++l) {
      const std::int64_t dj = cur[ss.state(anchor, l)];
      if (dj >= best_seen[l]) continue;
      best_seen[l] = dj;
      const graph::Cost walk_cost = l - start_layer;
      if (!(dj < 0 || walk_cost < 0)) continue;
      harvest(j, l);
    }
    if (tracker.type0 ||
        (stop_on_first && (tracker.t1 || tracker.t2)))
      return;
  }
}

}  // namespace

struct BicameralWorkspace::Impl {
  Scratch scratch;
};

BicameralWorkspace::BicameralWorkspace() : impl_(std::make_unique<Impl>()) {}
BicameralWorkspace::~BicameralWorkspace() = default;
BicameralWorkspace::BicameralWorkspace(BicameralWorkspace&&) noexcept =
    default;
BicameralWorkspace& BicameralWorkspace::operator=(
    BicameralWorkspace&&) noexcept = default;

std::optional<CycleType> BicameralCycleFinder::classify(
    graph::Cost c, graph::Delay d, graph::Cost cap,
    const util::Rational& ratio, bool enforce_cap) {
  if ((d < 0 && c <= 0) || (d <= 0 && c < 0)) return CycleType::kType0;
  if (d < 0 && c > 0 && (!enforce_cap || c <= cap)) {
    if (util::Rational(d, c) <= ratio) return CycleType::kType1;
  }
  if (d >= 0 && c < 0 && (!enforce_cap || -c <= cap)) {
    // Strict inequality (vs. Definition 10's >=): an equality type-2 cycle
    // leaves r_i unchanged while *increasing* ΔD, so accepting it can
    // alternate with its own reverse forever. With strictness every
    // accepted cycle improves the (r_i, ΔD_i) potential lexicographically,
    // giving unconditional termination; existence still holds for every
    // guess Ĉ > C_OPT (see DESIGN.md §3).
    if (util::Rational(d, c) > ratio) return CycleType::kType2;
  }
  return std::nullopt;
}

std::optional<FoundCycle> BicameralCycleFinder::find(
    const ResidualGraph& residual, const BicameralQuery& query,
    BicameralStats* stats, BicameralWorkspace* ws) const {
  const graph::Digraph& rg = residual.digraph();
  const int n = rg.num_vertices();
  const int rounds =
      options_.max_rounds > 0 ? std::min(options_.max_rounds, n) : n;
  const graph::CsrView csr(rg);

  graph::Cost budget_max = 0;
  if (query.enforce_cap) {
    budget_max = std::max<graph::Cost>(query.cap, 0);
  } else {
    for (const auto& e : rg.edges()) budget_max += std::abs(e.cost);
  }

  Tracker global;
  graph::Cost budget = std::min(
      std::max<graph::Cost>(options_.initial_budget, 0), budget_max);
  while (true) {
    if (stats != nullptr) ++stats->budgets_tried;
    const StateSpace ss{n, budget};
    // In the degenerate budget-0 case H+ and H- coincide.
    const int num_signs = budget == 0 ? 1 : 2;
    for (int sign = 0; sign < num_signs; ++sign) {
      const graph::Cost start_layer = sign == 0 ? 0 : budget;
      // Anchors are independent: scan them in parallel with per-thread
      // scratch, then merge per-anchor trackers in anchor order so the
      // outcome is identical to the serial scan. A caller-supplied
      // workspace selects the serial scan outright (the batch engine
      // parallelizes across solves) and keeps the tables alive across
      // find() calls.
      if (ws != nullptr) {
        Scratch& scratch = ws->impl().scratch;
        scratch.resize(rounds, ss.num_states());
        for (graph::VertexId anchor = 0; anchor < n; ++anchor) {
          Tracker tracker;
          AnchorStats anchor_stats;
          scan_anchor(residual, csr, ss, anchor, start_layer, rounds, query,
                      query.enforce_cap, scratch, tracker, anchor_stats);
          global.merge(std::move(tracker));
          if (stats != nullptr) {
            ++stats->anchors_scanned;
            stats->walks_examined += anchor_stats.walks;
            stats->cycles_classified += anchor_stats.cycles;
          }
        }
      } else {
        std::vector<Tracker> per_anchor(n);
        std::vector<AnchorStats> per_stats(n);
#ifdef _OPENMP
#pragma omp parallel if (n >= 16)
        {
          Scratch scratch;
          scratch.resize(rounds, ss.num_states());
#pragma omp for schedule(dynamic)
          for (graph::VertexId anchor = 0; anchor < n; ++anchor) {
            scan_anchor(residual, csr, ss, anchor, start_layer, rounds, query,
                        query.enforce_cap, scratch, per_anchor[anchor],
                        per_stats[anchor]);
          }
        }
#else
        {
          Scratch scratch;
          scratch.resize(rounds, ss.num_states());
          for (graph::VertexId anchor = 0; anchor < n; ++anchor) {
            scan_anchor(residual, csr, ss, anchor, start_layer, rounds, query,
                        query.enforce_cap, scratch, per_anchor[anchor],
                        per_stats[anchor]);
          }
        }
#endif
        for (graph::VertexId anchor = 0; anchor < n; ++anchor) {
          global.merge(std::move(per_anchor[anchor]));
          if (stats != nullptr) {
            ++stats->anchors_scanned;
            stats->walks_examined += per_stats[anchor].walks;
            stats->cycles_classified += per_stats[anchor].cycles;
          }
        }
      }
      if (global.type0) return global.type0;  // free improvement: take it
    }

    // Any qualifying cycle at this budget level suffices for the proofs;
    // prefer type-1 (direct delay progress). In the uncapped ablation the
    // semantics are "best ratio over ALL cycles", so keep scanning budgets.
    if (query.enforce_cap) {
      if (global.t1) return global.t1;
      if (global.t2) return global.t2;
    }
    if (budget >= budget_max) break;
    budget = std::min(budget_max, std::max<graph::Cost>(1, budget * 2));
  }
  if (global.t1) return global.t1;
  return global.t2;
}

}  // namespace krsp::core

#include "core/bicameral.h"

#include <algorithm>
#include <limits>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "graph/algorithms.h"
#include "graph/csr.h"
#include "graph/cycles.h"
#include "obs/trace.h"

namespace krsp::core {

namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();

// ---------------------------------------------------------------------------
// Shared per-find structure analysis.
//
// Seed-anchor theorem (the basis of the pruning; proof sketch, full
// statement in DESIGN.md §3):
//   sign 0 (H⁺, start layer 0):  every qualifying cycle has a prefix-valid
//     rotation anchored at the head of one of its negative arcs. The
//     rotation starting at a vertex achieving the minimum cost prefix keeps
//     every prefix in [0, ascent] ⊆ [0, B], and some minimum-achieving
//     vertex is entered by an arc of cost < 0 (walk the cycle backwards
//     through cost-0 arcs from any min-achiever; if the cycle has no
//     negative-cost arc at all, every arc costs 0 — its qualification then
//     rests on a negative-*delay* arc, whose head is a seed and any
//     rotation stays at layer 0).
//   sign 1 (H⁻, start layer B):  the same with tails of negative arcs, by
//     the mirror argument on the maximum cost prefix: the max-achiever's
//     outgoing cycle arc has cost <= 0. Heads would NOT suffice here — in
//     the 2-cycle (a→b, cost +5), (b→a, cost −6) the only valid H⁻ anchor
//     is b, the tail of the negative arc.
// The guarantee holds across the budget SCHEDULE, not per pass: for a
// cycle of total cost T >= 0 the prefix window is rotation-dependent, and
// if the cheapest rotation fits budget B_min, the seed (min-prefix)
// rotation fits B_min + T yet may genuinely need more than B_min. Example:
// the cost-7 cycle (+5, +1, −6, +7) fits budget 7 anchored before the +5
// arc, while its seed rotation — at the −6 arc's head — peaks at 13. The
// capped budget_max therefore carries 2× headroom (see find()), after
// which the doubling schedule reaches every seed rotation: a seed-anchored
// scan harvests every qualifying cycle at SOME budget <= budget_max, so
// the finder returns a qualifying cycle iff one exists. That is exactly
// what Lemmas 11/12 need — any qualifying cycle sustains the cancelling
// progress; no specific cycle is required.
//
// Per-anchor round bound (both modes): the witness cycles of Lemmas 11/12
// (components of optimal ⊕ current) are simple and, like every cycle,
// confined to one SCC, so min(max_rounds, |SCC(anchor)|) rounds reach them
// all.
//
// Execution modes:
//   pruned (default): scans only the seed anchors whose SCC has an internal
//     negative arc; each anchor's DP runs on its own SCC with compacted
//     vertex ids (|scc|·(B+1) states) using flat rolling dist rows and
//     packed parent records (FlatScratch).
//   ablation (disable_pruning): the pre-rewrite execution cost — every
//     vertex is scanned as an anchor over the full n·(B+1) state space with
//     the legacy eagerly-cleared nested-vector tables (LegacyScratch). Both
//     modes select from the SAME candidate set: only seed-anchored
//     trackers are merged. Non-seed scans are timed but their candidates
//     deliberately discarded — a non-seed rotation can fit a smaller
//     budget than the seed rotation of the same cycle (see above), so
//     merging them would surface cycles a doubling pass earlier and the
//     modes would return different (equally qualifying) cycles. Under the
//     seed-only selection contract the modes are bit-identical by
//     construction, and the equality the tests enforce is the meaningful
//     one: the flat compacted kernel is execution-equivalent to the legacy
//     full-state kernel at every shared anchor. Cross-SCC arcs never write
//     intra-SCC states in an anchored scan (a walk that leaves the
//     anchor's SCC cannot return), and the compacted member order
//     (ascending global id) preserves the relative relaxation order of
//     intra-SCC arcs, so first-writer tie-breaking — and hence every
//     harvested walk — matches exactly.
// ---------------------------------------------------------------------------
struct Structure {
  graph::SccPartition scc;
  std::vector<char> comp_has_negative;  // per comp: internal negative arc?
  // Compact intra-SCC adjacency for member position p (= scc.members[p]):
  // arcs[arc_first[p]..arc_first[p+1]) with .to holding the *local* id of
  // the target. Only populated for components with an internal negative arc
  // (the only ones the pruned kernel scans); global CSR order is preserved
  // within each member so relaxation tie-breaks match the legacy scan.
  std::vector<int> arc_first;
  std::vector<graph::CsrView::Arc> arcs;
  // Seed anchors per sign (0: heads, 1: tails of negative arcs), ascending.
  // pruned_seeds additionally drops anchors whose SCC has no internal
  // negative arc — provably barren. The pruned kernel scans pruned_seeds
  // only; the ablation scans every vertex but merges only the pruned_seeds
  // prefix of its anchor order (see the selection-rule comment above).
  std::vector<graph::VertexId> seeds[2];
  std::vector<graph::VertexId> pruned_seeds[2];
  std::int64_t sccs_skipped = 0;  // barren components holding >= 1 seed
  std::vector<char> seed_mark[2];  // build-time scratch, kept for reuse

  // Anchor order for the ablation: the pruned seed anchors first, in the
  // exact order the pruned scan uses, then every remaining vertex ascending.
  [[nodiscard]] std::vector<graph::VertexId> ablation_order(int sign) const {
    const int n = static_cast<int>(scc.component.size());
    std::vector<char> is_seed(n, 0);
    for (const graph::VertexId v : pruned_seeds[sign]) is_seed[v] = 1;
    std::vector<graph::VertexId> order = pruned_seeds[sign];
    order.reserve(n);
    for (graph::VertexId v = 0; v < n; ++v)
      if (!is_seed[v]) order.push_back(v);
    return order;
  }

  void build(const ResidualGraph& residual, const graph::CsrView& csr) {
    const graph::Digraph& rg = residual.digraph();
    const int n = rg.num_vertices();
    scc = graph::scc_partition(rg);
    comp_has_negative.assign(scc.num_components, 0);
    seed_mark[0].assign(n, 0);
    seed_mark[1].assign(n, 0);
    for (const graph::EdgeId e : residual.negative_arcs()) {
      const auto& edge = rg.edge(e);
      seed_mark[0][edge.to] = 1;
      seed_mark[1][edge.from] = 1;
      if (scc.component[edge.from] == scc.component[edge.to])
        comp_has_negative[scc.component[edge.from]] = 1;
    }
    for (int sign = 0; sign < 2; ++sign) {
      seeds[sign].clear();
      pruned_seeds[sign].clear();
      for (graph::VertexId v = 0; v < n; ++v) {
        if (!seed_mark[sign][v]) continue;
        seeds[sign].push_back(v);
        if (comp_has_negative[scc.component[v]])
          pruned_seeds[sign].push_back(v);
      }
    }
    // Count barren components exactly once each (a component may hold many
    // seeds of both signs).
    sccs_skipped = 0;
    for (int sign = 0; sign < 2; ++sign) {
      for (const graph::VertexId v : seeds[sign]) {
        const int c = scc.component[v];
        if (comp_has_negative[c] == 0) {
          comp_has_negative[c] = 2;  // mark counted (still falsy via == 1)
          ++sccs_skipped;
        }
      }
    }
    for (auto& flag : comp_has_negative)
      if (flag == 2) flag = 0;
    // Compact adjacency in member-position order == ascending global id
    // within each component == the legacy scan's relative relaxation order.
    arc_first.assign(n + 1, 0);
    arcs.clear();
    for (int p = 0; p < n; ++p) {
      const graph::VertexId u = scc.members[p];
      const int c = scc.component[u];
      if (comp_has_negative[c] != 0) {
        for (const auto& arc : csr.out(u)) {
          if (scc.component[arc.to] != c) continue;
          arcs.push_back(graph::CsrView::Arc{scc.local_id[arc.to], arc.cost,
                                             arc.delay, arc.id});
        }
      }
      arc_first[p + 1] = static_cast<int>(arcs.size());
    }
  }
};

// Flat DP tables for the pruned kernel: two rolling dist rows (the
// exactly-j-edges DP only ever reads row j−1 while writing row j) plus one
// packed parent record per (round, state). Parent entries are only read for
// states whose dist was written in the current scan, so they need no
// clearing; dist rows are cleared lazily, one row per round, instead of the
// legacy (rounds+1)·num_states eager wipe per anchor.
struct FlatScratch {
  struct ParentRec {
    std::int32_t state;
    graph::EdgeId edge;
  };
  static_assert(sizeof(ParentRec) == 8, "parent records should stay packed");

  std::vector<std::int64_t> dist;  // 2 rolling rows of num_states
  std::vector<ParentRec> parent;   // rounds rows of num_states
  std::vector<std::int64_t> best_seen;
  std::vector<graph::EdgeId> walk;

  void ensure(int rounds, int num_states) {
    const auto need_dist = 2 * static_cast<std::size_t>(num_states);
    if (dist.size() < need_dist) dist.resize(need_dist);
    const auto need_parent =
        static_cast<std::size_t>(rounds) * static_cast<std::size_t>(num_states);
    if (parent.size() < need_parent) parent.resize(need_parent);
  }

  [[nodiscard]] static std::int64_t bytes(int rounds, int num_states) {
    return static_cast<std::int64_t>(num_states) *
           (2 * static_cast<std::int64_t>(sizeof(std::int64_t)) +
            static_cast<std::int64_t>(rounds) * sizeof(ParentRec));
  }
};

// Flattened (vertex, layer) product state over the full vertex set — the
// ablation's view of the DP.
struct StateSpace {
  int n = 0;
  graph::Cost budget = 0;

  [[nodiscard]] int num_states() const {
    return static_cast<int>(n * (budget + 1));
  }
  [[nodiscard]] int state(graph::VertexId v, graph::Cost layer) const {
    return static_cast<int>(v * (budget + 1) + layer);
  }
};

// Legacy nested-vector tables, eagerly cleared per anchor — kept verbatim as
// the disable_pruning ablation so bench_kernel measures the real before/after
// of the flat kernel.
struct LegacyScratch {
  std::vector<std::vector<std::int64_t>> dist;
  std::vector<std::vector<int>> parent_state;
  std::vector<std::vector<graph::EdgeId>> parent_edge;
  std::vector<std::int64_t> best_seen;
  std::vector<graph::EdgeId> walk;

  int rounds = -1;
  int num_states = -1;

  void resize(int new_rounds, int new_num_states) {
    if (new_rounds != rounds || new_num_states != num_states) {
      dist.assign(new_rounds + 1,
                  std::vector<std::int64_t>(new_num_states, kInf));
      parent_state.assign(new_rounds + 1, std::vector<int>(new_num_states, -1));
      parent_edge.assign(
          new_rounds + 1,
          std::vector<graph::EdgeId>(new_num_states, graph::kInvalidEdge));
      rounds = new_rounds;
      num_states = new_num_states;
    }
  }

  void reset() {
    for (auto& row : dist) std::fill(row.begin(), row.end(), kInf);
  }

  [[nodiscard]] std::int64_t bytes() const {
    return static_cast<std::int64_t>(rounds + 1) * num_states *
           static_cast<std::int64_t>(sizeof(std::int64_t) + sizeof(int) +
                                     sizeof(graph::EdgeId));
  }
};

struct AnchorStats {
  std::int64_t walks = 0;
  std::int64_t cycles = 0;
  std::int64_t dp_bytes = 0;  // table high-water mark for this scan
};

// Candidate tracker with deterministic preference: type-0 wins outright,
// then best (most useful) ratio per type. Merging trackers in a fixed
// order keeps the parallel scan's result identical to the serial one.
struct Tracker {
  std::optional<FoundCycle> type0;
  std::optional<FoundCycle> t1;
  util::Rational t1_ratio{0};
  std::optional<FoundCycle> t2;
  util::Rational t2_ratio{0};

  void consider(FoundCycle found) {
    switch (found.type) {
      case CycleType::kType0:
        if (!type0) type0 = std::move(found);
        break;
      case CycleType::kType1: {
        const util::Rational r(found.delay, found.cost);
        if (!t1 || r < t1_ratio) {
          t1_ratio = r;
          t1 = std::move(found);
        }
        break;
      }
      case CycleType::kType2: {
        const util::Rational r(found.delay, found.cost);
        if (!t2 || r > t2_ratio) {
          t2_ratio = r;
          t2 = std::move(found);
        }
        break;
      }
    }
  }

  void merge(Tracker&& other) {
    if (other.type0 && !type0) type0 = std::move(other.type0);
    if (other.t1) {
      if (!t1 || other.t1_ratio < t1_ratio) {
        t1 = std::move(other.t1);
        t1_ratio = other.t1_ratio;
      }
    }
    if (other.t2) {
      if (!t2 || other.t2_ratio > t2_ratio) {
        t2 = std::move(other.t2);
        t2_ratio = other.t2_ratio;
      }
    }
  }
};

// Decomposes the closed walk reconstructed into `walk` and feeds qualifying
// cycles into the tracker. Shared by both kernels so classification cannot
// drift between them.
void classify_walk(const ResidualGraph& residual,
                   std::vector<graph::EdgeId>& walk,
                   const BicameralQuery& query, Tracker& tracker,
                   AnchorStats& stats) {
  for (auto& cycle : graph::decompose_closed_walk(residual.digraph(), walk)) {
    ++stats.cycles;
    const graph::Cost c = residual.cycle_cost(cycle);
    const graph::Delay d = residual.cycle_delay(cycle);
    const auto type = BicameralCycleFinder::classify(c, d, query.cap,
                                                     query.ratio,
                                                     query.enforce_cap);
    if (type) tracker.consider(FoundCycle{std::move(cycle), c, d, *type});
  }
}

// Pruned kernel: anchored layered Bellman–Ford for one (anchor, sign) pair
// on the anchor's SCC with compacted vertex ids and flat rolling tables.
// Candidates are harvested after every round; when `stop_on_first` is set
// (the capped algorithm — any qualifying cycle suffices for Lemma 12) the
// DP stops as soon as this anchor has produced one. The per-anchor decision
// never depends on other anchors, so the parallel scan stays deterministic.
void scan_anchor_flat(const ResidualGraph& residual, const Structure& st,
                      graph::Cost budget, graph::Cost max_abs_cost,
                      graph::VertexId anchor, graph::Cost start_layer,
                      int rounds, const BicameralQuery& query,
                      bool stop_on_first, FlatScratch& t, Tracker& tracker,
                      AnchorStats& stats) {
  const int c = st.scc.component[anchor];
  const int s = st.scc.component_size(c);
  const int base = st.scc.comp_first[c];
  const std::int64_t bp1 = static_cast<std::int64_t>(budget) + 1;
  const std::int64_t wide_states = static_cast<std::int64_t>(s) * bp1;
  KRSP_CHECK_MSG(wide_states <= std::numeric_limits<std::int32_t>::max(),
                 "bicameral DP state space exceeds 2^31 states");
  const int num_states = static_cast<int>(wide_states);
  t.ensure(rounds, num_states);
  stats.dp_bytes =
      std::max(stats.dp_bytes, FlatScratch::bytes(rounds, num_states));

  // Reachable-layer window after j rounds: every arc shifts the cost prefix
  // by at most max|c| and the DP clips layers to [0, budget], so round j
  // can only populate layers within j·max|c| of the start layer. States
  // outside the window provably hold dist = ∞, which lets the relax, clear
  // and harvest loops skip them without changing any result — the big
  // per-round saving over the legacy kernel's full 0..budget sweeps.
  const auto window_lo = [&](int j) -> graph::Cost {
    const util::Int128 reach = static_cast<util::Int128>(j) * max_abs_cost;
    if (reach >= start_layer) return 0;
    return start_layer - static_cast<graph::Cost>(reach);
  };
  const auto window_hi = [&](int j) -> graph::Cost {
    const util::Int128 reach = static_cast<util::Int128>(j) * max_abs_cost;
    if (reach >= budget - start_layer) return budget;
    return start_layer + static_cast<graph::Cost>(reach);
  };

  std::int64_t* prev = t.dist.data();
  std::int64_t* cur = t.dist.data() + num_states;
  // Round-0 window is the start column alone; only it needs clearing.
  for (int lu = 0; lu < s; ++lu) prev[lu * bp1 + start_layer] = kInf;
  const std::int64_t anchor_row = st.scc.local_id[anchor] * bp1;
  const int start = static_cast<int>(anchor_row + start_layer);
  prev[start] = 0;

  // Best walk delay seen per anchor layer (so each improvement is
  // reconstructed at most once).
  auto& best_seen = t.best_seen;
  best_seen.assign(budget + 1, kInf);

  const auto harvest = [&](int j, graph::Cost l) {
    ++stats.walks;
    auto& walk = t.walk;
    walk.clear();
    int state = static_cast<int>(anchor_row + l);
    for (int step = j; step > 0; --step) {
      const FlatScratch::ParentRec rec =
          t.parent[static_cast<std::size_t>(step - 1) * num_states + state];
      KRSP_CHECK(rec.edge != graph::kInvalidEdge);
      walk.push_back(rec.edge);
      state = rec.state;
    }
    KRSP_CHECK(state == start);
    std::reverse(walk.begin(), walk.end());
    classify_walk(residual, walk, query, tracker, stats);
  };

  for (int j = 1; j <= rounds; ++j) {
    bool any = false;
    const graph::Cost prev_lo = window_lo(j - 1), prev_hi = window_hi(j - 1);
    const graph::Cost cur_lo = window_lo(j), cur_hi = window_hi(j);
    for (int lu = 0; lu < s; ++lu) {
      std::int64_t* crow = cur + lu * bp1;
      std::fill(crow + cur_lo, crow + cur_hi + 1, kInf);
    }
    FlatScratch::ParentRec* par =
        t.parent.data() + static_cast<std::size_t>(j - 1) * num_states;
    for (int lu = 0; lu < s; ++lu) {
      const int arc_begin = st.arc_first[base + lu];
      const int arc_end = st.arc_first[base + lu + 1];
      if (arc_begin == arc_end) continue;
      const std::int64_t row = lu * bp1;
      for (graph::Cost l = prev_lo; l <= prev_hi; ++l) {
        const std::int64_t dist_u = prev[row + l];
        if (dist_u == kInf) continue;
        for (int a = arc_begin; a < arc_end; ++a) {
          const auto& arc = st.arcs[a];
          const graph::Cost l2 = l + arc.cost;
          if (l2 < 0 || l2 > budget) continue;
          const int to = static_cast<int>(arc.to * bp1 + l2);
          const std::int64_t nd = dist_u + arc.delay;
          if (nd < cur[to]) {
            cur[to] = nd;
            par[to] = FlatScratch::ParentRec{
                static_cast<std::int32_t>(row + l), arc.id};
            any = true;
          }
        }
      }
    }
    if (!any) break;
    // Harvest improved closed walks back at the anchor. Only walks that can
    // host a qualifying cycle are interesting: negative delay (type-0/1
    // material) or negative cost (type-0/2 material). Layers outside the
    // round-j window are still ∞ and can never pass the best_seen gate.
    for (graph::Cost l = cur_lo; l <= cur_hi; ++l) {
      const std::int64_t dj = cur[anchor_row + l];
      if (dj >= best_seen[l]) continue;
      best_seen[l] = dj;
      const graph::Cost walk_cost = l - start_layer;
      if (!(dj < 0 || walk_cost < 0)) continue;
      harvest(j, l);
    }
    if (tracker.type0 || (stop_on_first && (tracker.t1 || tracker.t2)))
      return;
    std::swap(prev, cur);
  }
}

// Ablation kernel: the same (anchor, sign) scan on the full n·(budget+1)
// state space with the legacy eagerly-cleared nested tables. Harvests the
// exact same walks as scan_anchor_flat (see the Structure comment for the
// equivalence argument).
void scan_anchor_legacy(const ResidualGraph& residual,
                        const graph::CsrView& csr, const StateSpace& ss,
                        graph::VertexId anchor, graph::Cost start_layer,
                        int rounds, const BicameralQuery& query,
                        bool stop_on_first, LegacyScratch& scratch,
                        Tracker& tracker, AnchorStats& stats) {
  const int n = residual.digraph().num_vertices();
  scratch.reset();
  stats.dp_bytes = std::max(stats.dp_bytes, scratch.bytes());
  const int start = ss.state(anchor, start_layer);
  scratch.dist[0][start] = 0;

  auto& best_seen = scratch.best_seen;
  best_seen.assign(ss.budget + 1, kInf);

  const auto harvest = [&](int j, graph::Cost l) {
    ++stats.walks;
    auto& walk = scratch.walk;
    walk.clear();
    int state = ss.state(anchor, l);
    for (int step = j; step > 0; --step) {
      const graph::EdgeId e = scratch.parent_edge[step][state];
      KRSP_CHECK(e != graph::kInvalidEdge);
      walk.push_back(e);
      state = scratch.parent_state[step][state];
    }
    KRSP_CHECK(state == start);
    std::reverse(walk.begin(), walk.end());
    classify_walk(residual, walk, query, tracker, stats);
  };

  for (int j = 1; j <= rounds; ++j) {
    bool any = false;
    const auto& prev = scratch.dist[j - 1];
    auto& cur = scratch.dist[j];
    for (graph::VertexId u = 0; u < n; ++u) {
      const auto arcs = csr.out(u);
      if (arcs.empty()) continue;
      for (graph::Cost l = 0; l <= ss.budget; ++l) {
        const std::int64_t base = prev[ss.state(u, l)];
        if (base == kInf) continue;
        for (const auto& arc : arcs) {
          const graph::Cost l2 = l + arc.cost;
          if (l2 < 0 || l2 > ss.budget) continue;
          const int to = ss.state(arc.to, l2);
          const std::int64_t nd = base + arc.delay;
          if (nd < cur[to]) {
            cur[to] = nd;
            scratch.parent_state[j][to] = ss.state(u, l);
            scratch.parent_edge[j][to] = arc.id;
            any = true;
          }
        }
      }
    }
    if (!any) break;
    for (graph::Cost l = 0; l <= ss.budget; ++l) {
      const std::int64_t dj = cur[ss.state(anchor, l)];
      if (dj >= best_seen[l]) continue;
      best_seen[l] = dj;
      const graph::Cost walk_cost = l - start_layer;
      if (!(dj < 0 || walk_cost < 0)) continue;
      harvest(j, l);
    }
    if (tracker.type0 || (stop_on_first && (tracker.t1 || tracker.t2)))
      return;
  }
}

}  // namespace

struct BicameralWorkspace::Impl {
  Structure structure;
  FlatScratch flat;
  LegacyScratch legacy;
};

BicameralWorkspace::BicameralWorkspace() : impl_(std::make_unique<Impl>()) {}
BicameralWorkspace::~BicameralWorkspace() = default;
BicameralWorkspace::BicameralWorkspace(BicameralWorkspace&&) noexcept =
    default;
BicameralWorkspace& BicameralWorkspace::operator=(
    BicameralWorkspace&&) noexcept = default;

std::optional<CycleType> BicameralCycleFinder::classify(
    graph::Cost c, graph::Delay d, graph::Cost cap,
    const util::Rational& ratio, bool enforce_cap) {
  if ((d < 0 && c <= 0) || (d <= 0 && c < 0)) return CycleType::kType0;
  if (d < 0 && c > 0 && (!enforce_cap || c <= cap)) {
    if (util::Rational(d, c) <= ratio) return CycleType::kType1;
  }
  if (d >= 0 && c < 0 && (!enforce_cap || -c <= cap)) {
    // Strict inequality (vs. Definition 10's >=): an equality type-2 cycle
    // leaves r_i unchanged while *increasing* ΔD, so accepting it can
    // alternate with its own reverse forever. With strictness every
    // accepted cycle improves the (r_i, ΔD_i) potential lexicographically,
    // giving unconditional termination; existence still holds for every
    // guess Ĉ > C_OPT (see DESIGN.md §3).
    if (util::Rational(d, c) > ratio) return CycleType::kType2;
  }
  return std::nullopt;
}

std::optional<FoundCycle> BicameralCycleFinder::find(
    const ResidualGraph& residual, const BicameralQuery& query,
    BicameralStats* stats, BicameralWorkspace* ws) const {
  const graph::Digraph& rg = residual.digraph();
  const int n = rg.num_vertices();
  // No negative residual arc ⇒ no qualifying cycle at any budget (its
  // negative total cost or delay would need a negative term). A semantic
  // fact, not an execution shortcut, so both execution modes share it.
  if (residual.negative_arcs().empty()) return std::nullopt;

  const graph::CsrView csr(rg);
  const bool pruned = !options_.disable_pruning;

  // Per-find structure analysis, shared read-only by every scan below.
  Structure local_structure;
  Structure& st = ws != nullptr ? ws->impl().structure : local_structure;
  st.build(residual, csr);
  if (stats != nullptr && pruned) stats->sccs_skipped += st.sccs_skipped;

  // Global round cap; each anchor is further bounded by its SCC size (the
  // witness cycles of Lemmas 11/12 are simple and SCC-confined).
  const int rounds_cap =
      options_.max_rounds > 0 ? std::min(options_.max_rounds, n) : n;
  const auto anchor_rounds = [&](graph::VertexId a) {
    return std::min(rounds_cap,
                    st.scc.component_size(st.scc.component[a]));
  };

  // Budget ceiling. Capped mode: 2·cap, NOT cap — the seed rotation of a
  // qualifying cycle (start at the minimum cost-prefix achiever) keeps its
  // prefixes within B_min + |cycle cost| <= cap + cap, where B_min <= cap
  // is the budget the cycle's cheapest rotation needs. Without the
  // headroom, a cycle whose seed rotation lands in (cap, 2·cap] is
  // findable from a non-seed anchor yet invisible to the seed scan (e.g. a
  // cost-7 cycle (+5,+1,−6,+7): its cheapest rotation peaks at 7 but the
  // rotation at the −6 arc's head peaks at 13). Uncapped mode: Σ|c|
  // already bounds every seed-rotation prefix. Both are further clamped to
  // rounds_cap·max|c| — a walk of <= rounds_cap edges keeps every cost
  // prefix within that bound, so higher layers are unreachable and the
  // clamp is exact. The clamp also keeps near-INT64_MAX caps from
  // overflowing the doubling schedule or materializing absurd DP tables.
  // Intermediates use 128-bit arithmetic because both the cap and the cost
  // sum may sit near the int64 edge.
  const graph::Cost max_abs_cost = rg.max_abs_cost();
  graph::Cost budget_max = 0;
  {
    util::Int128 bound = 0;
    if (query.enforce_cap) {
      bound =
          2 * static_cast<util::Int128>(std::max<graph::Cost>(query.cap, 0));
    } else {
      for (const auto& e : rg.edges())
        bound += e.cost < 0 ? -static_cast<util::Int128>(e.cost) : e.cost;
    }
    const util::Int128 reachable = static_cast<util::Int128>(rounds_cap) *
                                   static_cast<util::Int128>(max_abs_cost);
    bound = std::min(bound, reachable);
    bound = std::min(
        bound,
        static_cast<util::Int128>(std::numeric_limits<graph::Cost>::max()));
    budget_max = static_cast<graph::Cost>(bound);
  }

  Tracker global;
  graph::Cost budget = std::min(
      std::max<graph::Cost>(options_.initial_budget, 0), budget_max);
  while (true) {
    if (stats != nullptr) ++stats->budgets_tried;
    // In the degenerate budget-0 case H+ and H- coincide; the head-anchored
    // scan is complete there (all arcs on a layer-0 cycle cost 0, so any
    // rotation works and the negative-delay arc's head is a seed).
    const int num_signs = budget == 0 ? 1 : 2;
    for (int sign = 0; sign < num_signs; ++sign) {
      // One anchor DP batch: every anchor of this (budget, sign) pass,
      // serial or OpenMP, timed from the driver thread.
      KRSP_OBS_SPAN("anchor_dp_batch");
      const graph::Cost start_layer = sign == 0 ? 0 : budget;
      // Pruned mode scans only the seed anchors; the ablation scans every
      // vertex (the pre-rewrite execution cost), ordered seeds-first so the
      // merge below consults exactly the candidates the pruned scan sees.
      std::vector<graph::VertexId> ablation_anchors;
      if (!pruned) ablation_anchors = st.ablation_order(sign);
      const std::vector<graph::VertexId>& anchors =
          pruned ? st.pruned_seeds[sign] : ablation_anchors;
      const int na = static_cast<int>(anchors.size());
      const int num_seeds = static_cast<int>(st.pruned_seeds[sign].size());
      if (stats != nullptr) stats->anchors_pruned += n - na;

      StateSpace ss{n, budget};
      if (!pruned) {
        KRSP_CHECK_MSG(
            static_cast<std::int64_t>(n) * (static_cast<std::int64_t>(budget) +
                                            1) <=
                std::numeric_limits<std::int32_t>::max(),
            "bicameral DP state space exceeds 2^31 states");
      }

      // Anchors are independent: scan them in parallel with per-thread
      // scratch, then merge per-anchor trackers in anchor order so the
      // outcome is identical to the serial scan. A caller-supplied
      // workspace selects the serial scan outright (the batch engine
      // parallelizes across solves) and keeps the tables alive across
      // find() calls.
      // Selection rule shared by both modes: merge only the seed anchors
      // (anchors[0..num_seeds)). The remaining anchors — present only in
      // the ablation — are scanned for the honest pre-rewrite cost but
      // their trackers are discarded: a non-seed rotation can fit a budget
      // the seed rotation of the same cycle exceeds, so consulting them
      // would surface cycles a doubling pass early and break bit-identity
      // (see the header comment).
      if (ws != nullptr) {
        auto& impl = ws->impl();
        if (!pruned) impl.legacy.resize(rounds_cap, ss.num_states());
        for (int i = 0; i < na; ++i) {
          const graph::VertexId anchor = anchors[i];
          Tracker tracker;
          AnchorStats anchor_stats;
          if (pruned) {
            scan_anchor_flat(residual, st, budget, max_abs_cost, anchor,
                             start_layer, anchor_rounds(anchor), query,
                             query.enforce_cap, impl.flat, tracker,
                             anchor_stats);
          } else {
            scan_anchor_legacy(residual, csr, ss, anchor, start_layer,
                               anchor_rounds(anchor), query, query.enforce_cap,
                               impl.legacy, tracker, anchor_stats);
          }
          if (i < num_seeds) global.merge(std::move(tracker));
          if (stats != nullptr) {
            ++stats->anchors_scanned;
            stats->walks_examined += anchor_stats.walks;
            stats->cycles_classified += anchor_stats.cycles;
            stats->peak_dp_bytes =
                std::max(stats->peak_dp_bytes, anchor_stats.dp_bytes);
          }
        }
      } else {
        std::vector<Tracker> per_anchor(na);
        std::vector<AnchorStats> per_stats(na);
#ifdef _OPENMP
#pragma omp parallel if (na >= 16)
        {
          FlatScratch flat;
          LegacyScratch legacy;
          if (!pruned) legacy.resize(rounds_cap, ss.num_states());
#pragma omp for schedule(dynamic)
          for (int i = 0; i < na; ++i) {
            const graph::VertexId anchor = anchors[i];
            if (pruned) {
              scan_anchor_flat(residual, st, budget, max_abs_cost, anchor,
                               start_layer, anchor_rounds(anchor), query,
                               query.enforce_cap, flat, per_anchor[i],
                               per_stats[i]);
            } else {
              scan_anchor_legacy(residual, csr, ss, anchor, start_layer,
                                 anchor_rounds(anchor), query,
                                 query.enforce_cap, legacy, per_anchor[i],
                                 per_stats[i]);
            }
          }
        }
#else
        {
          FlatScratch flat;
          LegacyScratch legacy;
          if (!pruned) legacy.resize(rounds_cap, ss.num_states());
          for (int i = 0; i < na; ++i) {
            const graph::VertexId anchor = anchors[i];
            if (pruned) {
              scan_anchor_flat(residual, st, budget, max_abs_cost, anchor,
                               start_layer, anchor_rounds(anchor), query,
                               query.enforce_cap, flat, per_anchor[i],
                               per_stats[i]);
            } else {
              scan_anchor_legacy(residual, csr, ss, anchor, start_layer,
                                 anchor_rounds(anchor), query,
                                 query.enforce_cap, legacy, per_anchor[i],
                                 per_stats[i]);
            }
          }
        }
#endif
        for (int i = 0; i < na; ++i) {
          if (i < num_seeds) global.merge(std::move(per_anchor[i]));
          if (stats != nullptr) {
            ++stats->anchors_scanned;
            stats->walks_examined += per_stats[i].walks;
            stats->cycles_classified += per_stats[i].cycles;
            stats->peak_dp_bytes =
                std::max(stats->peak_dp_bytes, per_stats[i].dp_bytes);
          }
        }
      }
      if (global.type0) return global.type0;  // free improvement: take it
    }

    // Any qualifying cycle at this budget level suffices for the proofs;
    // prefer type-1 (direct delay progress). In the uncapped ablation the
    // semantics are "best ratio over ALL cycles", so keep scanning budgets.
    if (query.enforce_cap) {
      if (global.t1) return global.t1;
      if (global.t2) return global.t2;
    }
    if (budget >= budget_max) break;
    // Overflow-safe doubling: saturate at budget_max instead of computing
    // budget * 2 when that product could exceed it (or wrap).
    budget = budget > budget_max / 2 ? budget_max
                                     : std::max<graph::Cost>(1, budget * 2);
  }
  if (global.t1) return global.t1;
  return global.t2;
}

}  // namespace krsp::core

#include "core/path_set.h"

#include <sstream>
#include <unordered_set>

namespace krsp::core {

graph::Cost PathSet::total_cost(const graph::Digraph& g) const {
  graph::Cost sum = 0;
  for (const auto& p : paths_) sum += graph::path_cost(g, p);
  return sum;
}

graph::Delay PathSet::total_delay(const graph::Digraph& g) const {
  graph::Delay sum = 0;
  for (const auto& p : paths_) sum += graph::path_delay(g, p);
  return sum;
}

std::vector<graph::EdgeId> PathSet::all_edges() const {
  std::vector<graph::EdgeId> edges;
  for (const auto& p : paths_) edges.insert(edges.end(), p.begin(), p.end());
  return edges;
}

bool PathSet::is_valid(const Instance& inst, std::string* why) const {
  const auto fail = [&](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  if (size() != inst.k) {
    std::ostringstream os;
    os << "expected " << inst.k << " paths, have " << size();
    return fail(os.str());
  }
  std::unordered_set<graph::EdgeId> used;
  for (int i = 0; i < size(); ++i) {
    if (!graph::is_simple_path(inst.graph, paths_[i], inst.s, inst.t)) {
      std::ostringstream os;
      os << "path " << i << " is not a simple s-t path";
      return fail(os.str());
    }
    for (const graph::EdgeId e : paths_[i]) {
      if (!used.insert(e).second) {
        std::ostringstream os;
        os << "edge " << e << " reused (paths not disjoint)";
        return fail(os.str());
      }
    }
  }
  return true;
}

}  // namespace krsp::core

// Phase 1 of the paper's algorithm (Lemma 5): a starting solution whose
// delay/D + cost/C_OPT <= 2 — equivalently, delay <= αD and
// cost <= (2-α)·C_OPT for some α ∈ [0, 2].
//
// The paper invokes the LP-rounding algorithm of [9]. We realize the same
// guarantee combinatorially: the LP in question is a min-cost k-flow with a
// single delay side constraint, whose Lagrangian dual
//     max_λ≥0 [ min_F ( c(F) + λ·d(F) ) − λ·D ]
// has integral subproblems (min-cost flow), so by integrality of the flow
// polytope the dual optimum equals the LP optimum C_LP (tests cross-check
// this against the simplex solver). At the breakpoint λ* two optimal
// integral flows bracket the budget: F_hi with d ≤ D and F_lo with d > D;
// the convex combination meeting d = D costs exactly C_LP, hence the better
// of the two under the score d/D + c/C_LP is at most 2 — Lemma 5.
#pragma once

#include <optional>

#include "core/instance.h"
#include "core/path_set.h"
#include "util/deadline.h"
#include "util/rational.h"

namespace krsp::flow {
class McfWorkspace;
}

namespace krsp::core {

enum class Phase1Status {
  kOptimal,           // min-cost flow already satisfies D: exact optimum
  kApprox,            // Lemma 5 guarantee holds; delay may exceed D
  kNoKDisjointPaths,  // graph has fewer than k disjoint s→t paths
  kInfeasible,        // k disjoint paths exist but none meet the delay bound
};

struct Phase1Result {
  Phase1Status status = Phase1Status::kInfeasible;
  PathSet paths;                     // empty unless kOptimal/kApprox
  graph::Cost cost = 0;
  graph::Delay delay = 0;
  /// Certified lower bound on C_OPT: L(λ*) − λ*·D (== LP optimum).
  util::Rational cost_lower_bound = 0;
  /// The breakpoint multiplier λ*.
  util::Rational lambda = 0;
  /// Delay-feasible alternative (F_hi) kept for callers that must start
  /// from a feasible point; equals `paths` when that one was selected.
  std::optional<PathSet> feasible_alternative;
  int mcmf_calls = 0;
  /// The deadline expired mid-LARAC: the bracket (F_lo, F_hi) and the dual
  /// bound from the last λ are returned instead of the breakpoint λ*. The
  /// result is still a valid Lemma-5-style answer — any λ >= 0 yields a
  /// correct lower bound — just with a looser C_LP.
  bool deadline_hit = false;
};

/// Runs phase 1. Never returns paths violating structural validity; on
/// kApprox the returned solution satisfies delay/D + cost/C_LP <= 2.
/// An expired `deadline` cuts the LARAC iteration short (see
/// Phase1Result::deadline_hit); the two bracketing MCMF calls always run,
/// so feasibility answers (kOptimal/kInfeasible/kNoKDisjointPaths) are
/// exact regardless of the budget. `ws` (optional) reuses one min-cost-flow
/// network across all LARAC iterations and across solves; results are
/// identical with or without it.
Phase1Result phase1_lagrangian(const Instance& inst,
                               const util::Deadline& deadline = {},
                               flow::McfWorkspace* ws = nullptr);

}  // namespace krsp::core

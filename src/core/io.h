// Serialization of kRSP instances and solutions (extends graph/io.h's
// format): lets examples and benchmark pipelines persist and replay
// workloads.
//
// Instance format = the graph format plus one line:
//   q <s> <t> <k> <delay_bound>
// Solution format: one line per path, edge ids space-separated:
//   r <edge> <edge> ...
#pragma once

#include <iosfwd>
#include <string>

#include "core/instance.h"
#include "core/path_set.h"

namespace krsp::core {

void write_instance(std::ostream& os, const Instance& inst);
Instance read_instance(std::istream& is);

void write_instance_file(const std::string& path, const Instance& inst);
Instance read_instance_file(const std::string& path);

void write_paths(std::ostream& os, const PathSet& paths);
/// Reads a path set; `validate_against` checks it forms valid disjoint
/// s→t paths for the instance (KRSP_CHECKed).
PathSet read_paths(std::istream& is, const Instance& validate_against);

}  // namespace krsp::core

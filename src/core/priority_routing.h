// Urgency-based traffic assignment over a kRSP solution.
//
// The paper's justification for relaxing Definition 1 (per-path delay
// bound D) to Definition 2 (total delay bound, = kD): "route the packages
// via the k paths according to their urgency priority, i.e., routing
// urgent packages via paths of low delay whilst deferrable ones via paths
// of high delay." This module makes that deployment step concrete: sort
// the provisioned paths by delay, greedily assign traffic classes (sorted
// by strictness) to paths, and report per-class satisfaction.
//
// Guarantee bridged: if Σ delay(P_i) <= k·D then at least one path has
// delay <= D (pigeonhole) — the most urgent class is always servable at
// the Definition-1 bound; more generally the i-th strictest class sees the
// i-th lowest path delay.
#pragma once

#include <string>
#include <vector>

#include "core/instance.h"
#include "core/path_set.h"

namespace krsp::core {

struct TrafficClass {
  std::string name;
  graph::Delay max_delay = 0;  // per-path requirement of this class
};

struct ClassAssignment {
  std::string class_name;
  int path_index = -1;            // into PathSet::paths(); -1 = unassigned
  graph::Delay path_delay = 0;
  bool satisfied = false;         // path_delay <= class requirement
};

struct PriorityRoutingReport {
  /// One entry per class, in input order. Classes beyond the number of
  /// paths share the slowest path (multiplexed best-effort).
  std::vector<ClassAssignment> assignments;
  int satisfied_count = 0;
};

/// Assigns classes (strictest requirement first) to paths (lowest delay
/// first). Deterministic; never fails — unsatisfied classes are reported,
/// not dropped.
PriorityRoutingReport assign_by_urgency(const graph::Digraph& g,
                                        const PathSet& paths,
                                        std::vector<TrafficClass> classes);

}  // namespace krsp::core

#include "core/lp_cycle_finder.h"

#include <algorithm>
#include <cstdlib>

#include "core/aux_graph.h"
#include "graph/cycles.h"
#include "lp/simplex.h"

namespace krsp::core {

namespace {

constexpr double kSupportEps = 1e-7;

// Decomposes a fractional circulation (x per H-edge) into H-cycles by
// repeatedly peeling the minimum flow around a support cycle.
std::vector<std::vector<graph::EdgeId>> peel_circulation(
    const graph::Digraph& h, std::vector<double> x) {
  std::vector<std::vector<graph::EdgeId>> cycles;
  const int m = h.num_edges();
  for (graph::EdgeId seed = 0; seed < m; ++seed) {
    while (x[seed] > kSupportEps) {
      // Follow positive-support out-edges until a vertex repeats.
      std::vector<graph::EdgeId> stack;
      std::vector<int> pos(h.num_vertices(), -1);
      graph::VertexId at = h.edge(seed).from;
      pos[at] = 0;
      bool closed = false;
      while (!closed) {
        graph::EdgeId next = graph::kInvalidEdge;
        for (const graph::EdgeId e : h.out_edges(at)) {
          if (x[e] > kSupportEps) {
            next = e;
            break;
          }
        }
        KRSP_CHECK_MSG(next != graph::kInvalidEdge,
                       "circulation support not balanced at vertex " << at);
        stack.push_back(next);
        at = h.edge(next).to;
        if (pos[at] >= 0) {
          std::vector<graph::EdgeId> cycle(stack.begin() + pos[at],
                                           stack.end());
          double theta = x[cycle.front()];
          for (const graph::EdgeId e : cycle) theta = std::min(theta, x[e]);
          for (const graph::EdgeId e : cycle) x[e] -= theta;
          cycles.push_back(std::move(cycle));
          closed = true;
        } else {
          pos[at] = static_cast<int>(stack.size());
        }
      }
    }
  }
  return cycles;
}

}  // namespace

std::optional<FoundCycle> LpCycleFinder::find(const ResidualGraph& residual,
                                              const BicameralQuery& query,
                                              graph::Delay delta_d) const {
  const graph::Digraph& rg = residual.digraph();
  const int n = rg.num_vertices();

  graph::Cost budget_max = query.enforce_cap
                               ? std::max<graph::Cost>(query.cap, 0)
                               : [&] {
                                   graph::Cost sum = 0;
                                   for (const auto& e : rg.edges())
                                     sum += std::abs(e.cost);
                                   return sum;
                                 }();
  budget_max = std::min(budget_max, options_.max_budget);

  std::optional<FoundCycle> best_t1, best_t2;
  util::Rational best_t1_ratio(0), best_t2_ratio(0);

  const auto consider = [&](const graph::Cycle& cycle) -> bool {
    const graph::Cost c = residual.cycle_cost(cycle);
    const graph::Delay d = residual.cycle_delay(cycle);
    const auto type = BicameralCycleFinder::classify(c, d, query.cap,
                                                     query.ratio,
                                                     query.enforce_cap);
    if (!type) return false;
    FoundCycle found{cycle, c, d, *type};
    switch (*type) {
      case CycleType::kType0:
        best_t1 = std::move(found);
        return true;
      case CycleType::kType1:
        if (!best_t1 || util::Rational(d, c) < best_t1_ratio) {
          best_t1_ratio = util::Rational(d, c);
          best_t1 = std::move(found);
        }
        break;
      case CycleType::kType2:
        if (!best_t2 || util::Rational(d, c) > best_t2_ratio) {
          best_t2_ratio = util::Rational(d, c);
          best_t2 = std::move(found);
        }
        break;
    }
    return false;
  };

  const lp::SimplexSolver simplex;
  for (graph::Cost budget = 0; budget <= budget_max; ++budget) {
    const int num_signs = budget == 0 ? 1 : 2;
    for (int sign = 0; sign < num_signs; ++sign) {
      for (graph::VertexId anchor = 0; anchor < n; ++anchor) {
        const AuxiliaryGraph aux(rg, anchor, budget, sign == 0);
        const graph::Digraph& h = aux.digraph();
        if (h.num_edges() == 0) continue;

        // LP (6). x in [0, 1] per H-edge (a simple auxiliary cycle uses
        // each edge at most once; the bound also rules out unbounded
        // negative-cost circulation, which the combinatorial path reports
        // as a type-0 cycle instead).
        lp::LpModel model;
        for (graph::EdgeId e = 0; e < h.num_edges(); ++e)
          model.add_variable(static_cast<double>(h.edge(e).cost), 0.0, 1.0);
        for (graph::VertexId hv = 0; hv < h.num_vertices(); ++hv) {
          std::vector<lp::LinearTerm> terms;
          for (const graph::EdgeId e : h.out_edges(hv))
            terms.push_back({e, 1.0});
          for (const graph::EdgeId e : h.in_edges(hv))
            terms.push_back({e, -1.0});
          if (!terms.empty())
            model.add_constraint(std::move(terms), lp::Relation::kEq, 0.0);
        }
        std::vector<lp::LinearTerm> delay_terms;
        for (graph::EdgeId e = 0; e < h.num_edges(); ++e)
          if (h.edge(e).delay != 0)
            delay_terms.push_back({e, static_cast<double>(h.edge(e).delay)});
        model.add_constraint(std::move(delay_terms), lp::Relation::kLessEq,
                             static_cast<double>(delta_d));

        const auto solution = simplex.solve(model);
        if (solution.status != lp::LpStatus::kOptimal) continue;

        for (const auto& h_cycle : peel_circulation(h, solution.x)) {
          const auto walk = aux.project_cycle(h_cycle);
          if (walk.empty()) continue;
          for (const auto& cycle : graph::decompose_closed_walk(rg, walk)) {
            if (consider(cycle)) return best_t1;  // type-0
          }
        }
      }
    }
  }
  if (best_t1) return best_t1;
  return best_t2;
}

}  // namespace krsp::core

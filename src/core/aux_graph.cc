#include "core/aux_graph.h"

namespace krsp::core {

AuxiliaryGraph::AuxiliaryGraph(const graph::Digraph& base,
                               graph::VertexId anchor, graph::Cost budget,
                               bool positive)
    : base_(base), anchor_(anchor), budget_(budget), positive_(positive) {
  KRSP_CHECK(base.is_vertex(anchor));
  KRSP_CHECK(budget >= 0);
  const int n = base.num_vertices();
  const auto layers = budget + 1;
  h_.resize(static_cast<int>(n * layers));

  // Step 2 of Algorithm 2 (both signs uniformly): u^l -> w^(l + c) whenever
  // both layers are in range. H-edges inherit the base edge's cost and
  // delay so cycle measures can be read off H directly.
  for (graph::EdgeId e = 0; e < base.num_edges(); ++e) {
    const auto& edge = base.edge(e);
    for (graph::Cost l = 0; l <= budget; ++l) {
      const graph::Cost l2 = l + edge.cost;
      if (l2 < 0 || l2 > budget) continue;
      h_.add_edge(vertex_of(edge.from, l), vertex_of(edge.to, l2), edge.cost,
                  edge.delay);
      base_edge_.push_back(e);
    }
  }
  // Step 3: anchor closing arcs back to the start layer, zero delay. Their
  // cost restores the layer balance so an H-cycle's cost equals zero plus
  // the certified base-cycle cost is the layer distance; we store cost 0 and
  // let project_cycle() recover true costs from base edges.
  const graph::Cost start = positive ? 0 : budget;
  for (graph::Cost l = 0; l <= budget; ++l) {
    if (l == start) continue;
    h_.add_edge(vertex_of(anchor, l), vertex_of(anchor, start), 0, 0);
    base_edge_.push_back(graph::kInvalidEdge);
  }
}

graph::VertexId AuxiliaryGraph::vertex_of(graph::VertexId base_vertex,
                                          graph::Cost layer) const {
  KRSP_DCHECK(base_.is_vertex(base_vertex));
  KRSP_DCHECK(layer >= 0 && layer <= budget_);
  return static_cast<graph::VertexId>(base_vertex * (budget_ + 1) + layer);
}

graph::VertexId AuxiliaryGraph::base_vertex_of(graph::VertexId hv) const {
  KRSP_DCHECK(h_.is_vertex(hv));
  return static_cast<graph::VertexId>(hv / (budget_ + 1));
}

graph::Cost AuxiliaryGraph::layer_of(graph::VertexId hv) const {
  KRSP_DCHECK(h_.is_vertex(hv));
  return hv % (budget_ + 1);
}

std::vector<graph::EdgeId> AuxiliaryGraph::project_cycle(
    std::span<const graph::EdgeId> h_cycle) const {
  std::vector<graph::EdgeId> walk;
  for (const graph::EdgeId he : h_cycle) {
    const graph::EdgeId be = base_edge_of(he);
    if (be != graph::kInvalidEdge) walk.push_back(be);
  }
  return walk;
}

}  // namespace krsp::core

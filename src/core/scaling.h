// Weight scaling for Theorem 4: floor-scale delays against the budget D and
// costs against a guess Ĉ for C_OPT so the pseudo-polynomial core becomes
// polynomial, at the price of (1+ε1) delay / (+ε2 cost) slack.
//
// With S_d = ceil(k·n/ε1) and d'(e) = floor(d(e)·S_d / D), any k-path
// system feasible for (d, D) is feasible for (d', D' = S_d), and any system
// with Σd' <= S_d has Σd <= (1+ε1)·D (each path has < n edges, k paths lose
// < k·n·D/S_d <= ε1·D to flooring). Costs scale the same way against Ĉ.
#pragma once

#include "core/instance.h"

namespace krsp::core {

struct ScaledInstance {
  Instance scaled;  // identical topology and edge order, scaled weights
  bool delay_scaled = false;
  bool cost_scaled = false;
  /// d' = floor(d * delay_num / delay_den) when delay_scaled.
  std::int64_t delay_num = 1, delay_den = 1;
  /// c' = floor(c * cost_num / cost_den) when cost_scaled.
  std::int64_t cost_num = 1, cost_den = 1;
};

/// Scales `inst`. Scaling is skipped per-dimension when it would not shrink
/// the weights (S >= D or S >= cost_guess) — then the exact weights are
/// already polynomial-sized. cost_guess <= 0 disables cost scaling.
ScaledInstance scale_instance(const Instance& inst, double eps1, double eps2,
                              graph::Cost cost_guess);

}  // namespace krsp::core

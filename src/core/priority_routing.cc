#include "core/priority_routing.h"

#include <algorithm>
#include <numeric>

namespace krsp::core {

PriorityRoutingReport assign_by_urgency(const graph::Digraph& g,
                                        const PathSet& paths,
                                        std::vector<TrafficClass> classes) {
  KRSP_CHECK_MSG(paths.size() > 0, "assign_by_urgency with no paths");

  // Paths by increasing delay.
  std::vector<int> order(paths.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<graph::Delay> delays;
  delays.reserve(paths.size());
  for (const auto& p : paths.paths()) delays.push_back(graph::path_delay(g, p));
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return delays[a] < delays[b]; });

  // Classes by increasing (strictest-first) requirement, stable on input
  // order so equal requirements keep caller priority.
  std::vector<int> class_order(classes.size());
  std::iota(class_order.begin(), class_order.end(), 0);
  std::stable_sort(class_order.begin(), class_order.end(), [&](int a, int b) {
    return classes[a].max_delay < classes[b].max_delay;
  });

  PriorityRoutingReport report;
  report.assignments.resize(classes.size());
  for (std::size_t rank = 0; rank < class_order.size(); ++rank) {
    const int ci = class_order[rank];
    const int path_rank =
        static_cast<int>(std::min(rank, order.size() - 1));
    const int pi = order[path_rank];
    ClassAssignment a;
    a.class_name = classes[ci].name;
    a.path_index = pi;
    a.path_delay = delays[pi];
    a.satisfied = a.path_delay <= classes[ci].max_delay;
    if (a.satisfied) ++report.satisfied_count;
    report.assignments[ci] = std::move(a);
  }
  return report;
}

}  // namespace krsp::core

// Per-thread reusable solver scratch.
//
// One kRSP solve allocates the same large structures over and over: the
// min-cost-flow network behind every phase-1 LARAC iteration, the bicameral
// finder's layered Bellman–Ford tables, the residual digraph rebuilt each
// cancellation round. A SolveWorkspace keeps those alive across solves so
// the hot paths become allocation-free on repeat solves — the contract the
// batch engine (engine/batch_engine.h) relies on for throughput.
//
// Semantics: a workspace NEVER changes results. Every component re-checks
// dimensions/topology and rebuilds when they do not match, so a workspace
// can be handed instances of any shape in any order; reuse is purely a
// performance property (engine_test asserts reused == fresh on randomized
// instances). Not thread-safe: use one workspace per thread.
#pragma once

#include <cstdint>

#include "core/bicameral.h"
#include "flow/min_cost_flow.h"

namespace krsp::core {

struct SolveWorkspace {
  /// Cached min-cost-flow network for phase 1's repeated Lagrangian calls.
  flow::McfWorkspace mcmf;
  /// Bicameral finder scratch: the flat rolling dist rows + packed parent
  /// records of the pruned kernel (and the legacy nested tables when the
  /// ablation runs), grown high-water across calls. Also pins the finder
  /// to its serial scan; see BicameralWorkspace.
  BicameralWorkspace finder;
  /// Solves started through this workspace (telemetry only).
  std::uint64_t solves_started = 0;
};

}  // namespace krsp::core

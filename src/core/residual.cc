#include "core/residual.h"

#include <algorithm>

#include "graph/cycles.h"

namespace krsp::core {

ResidualGraph::ResidualGraph(const graph::Digraph& g,
                             const std::vector<graph::EdgeId>& flow_edges)
    : original_(g) {
  rebuild(flow_edges);
}

void ResidualGraph::rebuild(const std::vector<graph::EdgeId>& flow_edges) {
  const graph::Digraph& g = original_;
  flow_.clear();
  flow_.insert(flow_edges.begin(), flow_edges.end());
  KRSP_CHECK_MSG(flow_.size() == flow_edges.size(),
                 "duplicate edges in flow set");
  residual_.clear_edges();
  residual_.resize(g.num_vertices());
  tags_.clear();
  tags_.reserve(g.num_edges());
  negative_arcs_.clear();
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& edge = g.edge(e);
    graph::EdgeId re;
    if (flow_.count(e) != 0) {
      re = residual_.add_edge(edge.to, edge.from, -edge.cost, -edge.delay);
      tags_.push_back(Tag{e, true});
    } else {
      re = residual_.add_edge(edge.from, edge.to, edge.cost, edge.delay);
      tags_.push_back(Tag{e, false});
    }
    const auto& r = residual_.edge(re);
    if (r.cost < 0 || r.delay < 0) negative_arcs_.push_back(re);
  }
}

graph::Cost ResidualGraph::cycle_cost(
    std::span<const graph::EdgeId> residual_edges) const {
  return graph::path_cost(residual_, residual_edges);
}

graph::Delay ResidualGraph::cycle_delay(
    std::span<const graph::EdgeId> residual_edges) const {
  return graph::path_delay(residual_, residual_edges);
}

std::vector<graph::EdgeId> ResidualGraph::apply_cycle(
    std::span<const graph::EdgeId> residual_cycle) const {
  auto next = flow_;
  for (const graph::EdgeId re : residual_cycle) {
    KRSP_CHECK(re >= 0 && re < static_cast<graph::EdgeId>(tags_.size()));
    const Tag& tag = tags_[re];
    if (tag.reversed) {
      KRSP_CHECK_MSG(next.erase(tag.orig) == 1,
                     "reversed residual edge whose original is not in flow");
    } else {
      KRSP_CHECK_MSG(next.insert(tag.orig).second,
                     "forward residual edge whose original is already in flow");
    }
  }
  std::vector<graph::EdgeId> out(next.begin(), next.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::vector<graph::EdgeId>> difference_cycles(
    const ResidualGraph& residual, const std::vector<graph::EdgeId>& current,
    const std::vector<graph::EdgeId>& target) {
  const std::unordered_set<graph::EdgeId> cur(current.begin(), current.end());
  const std::unordered_set<graph::EdgeId> tgt(target.begin(), target.end());
  // Residual edge ids coincide with original edge ids by construction
  // (one residual edge per original edge, same index).
  std::vector<graph::EdgeId> edges;
  const int m = residual.digraph().num_edges();
  for (graph::EdgeId re = 0; re < m; ++re) {
    const graph::EdgeId orig = residual.original_edge(re);
    [[maybe_unused]] const bool in_cur = cur.count(orig) != 0;
    const bool in_tgt = tgt.count(orig) != 0;
    if (residual.is_reversed(re)) {
      KRSP_DCHECK(in_cur);
      if (!in_tgt) edges.push_back(re);  // current-only: traverse backwards
    } else {
      KRSP_DCHECK(!in_cur);
      if (in_tgt) edges.push_back(re);  // target-only: traverse forwards
    }
  }
  return graph::decompose_balanced_edge_set(residual.digraph(), edges);
}

}  // namespace krsp::core

#include "core/repair.h"

#include <unordered_set>

#include "paths/rsp.h"

namespace krsp::core {

namespace {

// Copy of g without the excluded edges, with a map back to original ids.
struct Subgraph {
  graph::Digraph graph;
  std::vector<graph::EdgeId> orig_of;  // per new edge id
};

Subgraph build_subgraph(const graph::Digraph& g,
                        const std::unordered_set<graph::EdgeId>& excluded) {
  Subgraph sub;
  sub.graph.resize(g.num_vertices());
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    if (excluded.count(e)) continue;
    const auto& edge = g.edge(e);
    sub.graph.add_edge(edge.from, edge.to, edge.cost, edge.delay);
    sub.orig_of.push_back(e);
  }
  return sub;
}

std::vector<graph::EdgeId> map_back(const Subgraph& sub,
                                    std::span<const graph::EdgeId> path) {
  std::vector<graph::EdgeId> out;
  out.reserve(path.size());
  for (const graph::EdgeId e : path) out.push_back(sub.orig_of[e]);
  return out;
}

}  // namespace

RepairResult repair_after_failures(const Instance& inst,
                                   const PathSet& current,
                                   std::span<const graph::EdgeId> failed,
                                   const SolverOptions& options) {
  return repair_after_failures(
      inst, current, failed, options,
      util::Deadline::after_seconds(options.deadline_seconds));
}

RepairResult repair_after_failures(const Instance& inst,
                                   const PathSet& current,
                                   std::span<const graph::EdgeId> failed,
                                   const SolverOptions& options,
                                   const util::Deadline& deadline) {
  inst.validate();
  std::unordered_set<graph::EdgeId> failed_set;
  for (const graph::EdgeId e : failed) {
    KRSP_CHECK(inst.graph.is_edge(e));
    failed_set.insert(e);
  }
  std::string why;
  KRSP_CHECK_MSG(current.is_valid(inst, &why), "repair: " << why);

  RepairResult out;

  // Which provisioned paths use failed edges?
  std::vector<int> broken_paths;
  for (std::size_t i = 0; i < current.paths().size(); ++i) {
    bool hit = false;
    for (const graph::EdgeId e : current.paths()[i])
      if (failed_set.count(e)) hit = true;
    if (hit) broken_paths.push_back(static_cast<int>(i));
  }
  const int broken = broken_paths.size() == 1 ? broken_paths.front() : -1;
  if (broken_paths.empty()) {
    out.outcome = RepairOutcome::kUntouched;
    out.paths = current;
    out.cost = current.total_cost(inst.graph);
    out.delay = current.total_delay(inst.graph);
    return out;
  }

  // Local repair (single broken path): one replacement path, disjoint from
  // the survivors, within the leftover delay budget, cost-minimal (exact
  // RSP). With multiple broken paths, go straight to the full re-solve.
  std::vector<std::vector<graph::EdgeId>> survivors;
  std::unordered_set<graph::EdgeId> excluded = failed_set;
  graph::Delay survivor_delay = 0;
  for (std::size_t i = 0; i < current.paths().size(); ++i) {
    if (static_cast<int>(i) == broken) continue;
    survivors.push_back(current.paths()[i]);
    survivor_delay += graph::path_delay(inst.graph, current.paths()[i]);
    for (const graph::EdgeId e : current.paths()[i]) excluded.insert(e);
  }
  const graph::Delay leftover = inst.delay_bound - survivor_delay;
  if (broken >= 0 && leftover >= 0) {
    const auto sub = build_subgraph(inst.graph, excluded);
    if (const auto replacement =
            paths::rsp_exact(sub.graph, inst.s, inst.t, leftover)) {
      auto paths = survivors;
      paths.push_back(map_back(sub, replacement->path));
      out.paths = PathSet(std::move(paths));
      KRSP_CHECK(out.paths.is_valid(inst));
      out.cost = out.paths.total_cost(inst.graph);
      out.delay = out.paths.total_delay(inst.graph);
      KRSP_CHECK(out.delay <= inst.delay_bound);
      out.outcome = RepairOutcome::kLocalRepair;
      return out;
    }
  }

  // Full re-solve on the degraded graph.
  const auto solution = solve_degraded(inst, failed_set, options, deadline);
  out.degradation = solution.telemetry.degradation;
  if (!solution.has_paths()) {
    out.outcome = RepairOutcome::kInfeasible;
    return out;
  }
  out.paths = solution.paths;
  KRSP_CHECK(out.paths.is_valid(inst));
  out.cost = out.paths.total_cost(inst.graph);
  out.delay = out.paths.total_delay(inst.graph);
  out.outcome = RepairOutcome::kFullResolve;
  return out;
}

Solution solve_degraded(const Instance& inst,
                        const std::unordered_set<graph::EdgeId>& failed,
                        const SolverOptions& options,
                        const util::Deadline& deadline) {
  const auto degraded = build_subgraph(inst.graph, failed);
  Instance degraded_inst;
  degraded_inst.graph = degraded.graph;
  degraded_inst.s = inst.s;
  degraded_inst.t = inst.t;
  degraded_inst.k = inst.k;
  degraded_inst.delay_bound = inst.delay_bound;
  Solution solution = KrspSolver(options).solve(degraded_inst, deadline);
  if (solution.has_paths()) {
    std::vector<std::vector<graph::EdgeId>> mapped;
    for (const auto& p : solution.paths.paths())
      mapped.push_back(map_back(degraded, p));
    solution.paths = PathSet(std::move(mapped));
  }
  return solution;
}

RepairResult repair_after_edge_failure(const Instance& inst,
                                       const PathSet& current,
                                       graph::EdgeId failed_edge,
                                       const SolverOptions& options) {
  const graph::EdgeId failed[] = {failed_edge};
  return repair_after_failures(inst, current, failed, options);
}

}  // namespace krsp::core

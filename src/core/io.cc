#include "core/io.h"

#include <fstream>
#include <sstream>

#include "graph/io.h"
#include "util/check.h"

namespace krsp::core {

void write_instance(std::ostream& os, const Instance& inst) {
  inst.validate();
  graph::write_graph(os, inst.graph);
  os << "q " << inst.s << ' ' << inst.t << ' ' << inst.k << ' '
     << inst.delay_bound << '\n';
}

namespace {

// Single pass over the stream: graph lines go to the incremental parser,
// the 'q' query line is handled here — all with real line numbers, so a
// malformed token anywhere reports "line N, column C" of the original
// stream (the old implementation buffered graph lines into a second
// stream and lost the positions).
Instance read_instance_impl(std::istream& is, std::string_view context) {
  Instance inst;
  graph::GraphParser parser(context);
  std::string line;
  int line_number = 0;
  bool have_query = false;
  int query_line = 0;
  while (std::getline(is, line)) {
    ++line_number;
    graph::FieldScanner peek(line, line_number, context);
    if (peek.at_end()) continue;
    if (peek.kind() != 'q') {
      parser.consume(line, line_number);
      continue;
    }
    // peek consumed the 'q'; continue scanning the same line.
    if (have_query)
      peek.error("duplicate query line (first at line " +
                 std::to_string(query_line) + ")");
    inst.s = static_cast<graph::VertexId>(peek.integer("source vertex"));
    inst.t = static_cast<graph::VertexId>(peek.integer("target vertex"));
    inst.k = static_cast<int>(peek.integer("path count k"));
    inst.delay_bound = peek.integer("delay bound");
    peek.expect_end();
    have_query = true;
    query_line = line_number;
  }
  inst.graph = parser.finish();
  if (!have_query) {
    std::ostringstream os;
    if (!context.empty()) os << context << ": ";
    os << "line " << line_number << ": instance stream missing the query "
       << "('q') line";
    throw util::CheckError(os.str());
  }
  inst.validate();
  return inst;
}

}  // namespace

Instance read_instance(std::istream& is) { return read_instance_impl(is, ""); }

void write_instance_file(const std::string& path, const Instance& inst) {
  std::ofstream os(path);
  KRSP_CHECK_MSG(os.good(), "cannot open for write: " << path);
  write_instance(os, inst);
}

Instance read_instance_file(const std::string& path) {
  std::ifstream is(path);
  KRSP_CHECK_MSG(is.good(), "cannot open for read: " << path);
  return read_instance_impl(is, path);
}

void write_paths(std::ostream& os, const PathSet& paths) {
  for (const auto& p : paths.paths()) {
    os << 'r';
    for (const graph::EdgeId e : p) os << ' ' << e;
    os << '\n';
  }
}

PathSet read_paths(std::istream& is, const Instance& validate_against) {
  std::vector<std::vector<graph::EdgeId>> paths;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] != 'r') continue;
    std::istringstream ls(line);
    char kind = 0;
    ls >> kind;
    std::vector<graph::EdgeId> path;
    graph::EdgeId e;
    while (ls >> e) path.push_back(e);
    paths.push_back(std::move(path));
  }
  PathSet result(std::move(paths));
  std::string why;
  KRSP_CHECK_MSG(result.is_valid(validate_against, &why),
                 "read_paths: invalid path set: " << why);
  return result;
}

}  // namespace krsp::core

#include "core/io.h"

#include <fstream>
#include <sstream>

#include "graph/io.h"

namespace krsp::core {

void write_instance(std::ostream& os, const Instance& inst) {
  inst.validate();
  graph::write_graph(os, inst.graph);
  os << "q " << inst.s << ' ' << inst.t << ' ' << inst.k << ' '
     << inst.delay_bound << '\n';
}

Instance read_instance(std::istream& is) {
  // The graph reader consumes arc lines; the query line is read here, so
  // parse the stream manually in one pass.
  Instance inst;
  std::string line;
  std::ostringstream graph_part;
  bool have_query = false;
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] == 'q') {
      std::istringstream ls(line);
      char kind = 0;
      ls >> kind >> inst.s >> inst.t >> inst.k >> inst.delay_bound;
      KRSP_CHECK_MSG(!ls.fail(), "malformed query line: " << line);
      have_query = true;
    } else {
      graph_part << line << '\n';
    }
  }
  KRSP_CHECK_MSG(have_query, "instance stream missing query line");
  std::istringstream gs(graph_part.str());
  inst.graph = graph::read_graph(gs);
  inst.validate();
  return inst;
}

void write_instance_file(const std::string& path, const Instance& inst) {
  std::ofstream os(path);
  KRSP_CHECK_MSG(os.good(), "cannot open for write: " << path);
  write_instance(os, inst);
}

Instance read_instance_file(const std::string& path) {
  std::ifstream is(path);
  KRSP_CHECK_MSG(is.good(), "cannot open for read: " << path);
  return read_instance(is);
}

void write_paths(std::ostream& os, const PathSet& paths) {
  for (const auto& p : paths.paths()) {
    os << 'r';
    for (const graph::EdgeId e : p) os << ' ' << e;
    os << '\n';
  }
}

PathSet read_paths(std::istream& is, const Instance& validate_against) {
  std::vector<std::vector<graph::EdgeId>> paths;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] != 'r') continue;
    std::istringstream ls(line);
    char kind = 0;
    ls >> kind;
    std::vector<graph::EdgeId> path;
    graph::EdgeId e;
    while (ls >> e) path.push_back(e);
    paths.push_back(std::move(path));
  }
  PathSet result(std::move(paths));
  std::string why;
  KRSP_CHECK_MSG(result.is_valid(validate_against, &why),
                 "read_paths: invalid path set: " << why);
  return result;
}

}  // namespace krsp::core

// Incremental repair after a link failure.
//
// The resilience story of §1 ("networks are expected to be ... resilient to
// some degree of failures"): when a link carrying one of the k provisioned
// paths fails, a controller prefers a local repair — replace just the
// broken path — over a full re-solve. This module implements that repair:
//
//  * failed edge unused by the solution → nothing to do;
//  * otherwise remove the broken path and search a single replacement path
//    (an RSP query, polynomial and exact via the delay DP) that is
//    edge-disjoint from the k−1 survivors and fits the remaining delay
//    budget, minimizing cost;
//  * if no such path exists, fall back to a full kRSP re-solve on the
//    degraded graph (reported, so callers can account the disruption).
//
// The repaired solution is feasible by construction but not necessarily
// within the 2·C_OPT guarantee of a fresh solve — `RepairOutcome` says
// which level of service was delivered.
#pragma once

#include <unordered_set>

#include "core/solver.h"

namespace krsp::core {

enum class RepairOutcome {
  kUntouched,     // failed edge was not in use
  kLocalRepair,   // one path replaced, k-1 paths untouched
  kFullResolve,   // local repair impossible; full re-solve succeeded
  kInfeasible,    // degraded graph cannot support k paths within D
};

struct RepairResult {
  RepairOutcome outcome = RepairOutcome::kInfeasible;
  PathSet paths;
  graph::Cost cost = 0;
  graph::Delay delay = 0;
  /// Anytime ladder step taken by the full re-solve when it ran under a
  /// deadline; kNone for untouched / local repairs (those are single
  /// polynomial RSP queries, not deadline-gated).
  DegradationStep degradation = DegradationStep::kNone;
};

/// Repairs `current` (a valid solution of `inst`) after the given edges
/// fail. The instance keeps its original graph and edge ids; failed edges
/// are treated as unusable (pass the *cumulative* failure set when failures
/// arrive one at a time). Local repair applies when exactly one provisioned
/// path is broken; multiple broken paths fall back to a full re-solve.
/// KRSP_CHECKs that `current` is valid for `inst` and uses no failed edge
/// except the newly failed ones.
RepairResult repair_after_failures(const Instance& inst,
                                   const PathSet& current,
                                   std::span<const graph::EdgeId> failed,
                                   const SolverOptions& options = {});

/// As above, but the fallback re-solve runs against the caller's absolute
/// `deadline` (shared with whatever other work the caller's event-handling
/// budget covers) instead of a fresh clock from options.deadline_seconds.
RepairResult repair_after_failures(const Instance& inst,
                                   const PathSet& current,
                                   std::span<const graph::EdgeId> failed,
                                   const SolverOptions& options,
                                   const util::Deadline& deadline);

/// Single-failure convenience wrapper.
RepairResult repair_after_edge_failure(const Instance& inst,
                                       const PathSet& current,
                                       graph::EdgeId failed_edge,
                                       const SolverOptions& options = {});

/// Fresh solve on `inst` with the failed edges removed, path edge ids
/// mapped back to inst's ids. This is the full re-solve the repair ladder
/// falls back to, exposed on its own for controllers that re-provision
/// outside a repair (e.g. opportunistic re-optimization after a link
/// recovers). The returned solution's paths reference inst's edge ids and
/// use no failed edge.
Solution solve_degraded(const Instance& inst,
                        const std::unordered_set<graph::EdgeId>& failed,
                        const SolverOptions& options,
                        const util::Deadline& deadline = {});

}  // namespace krsp::core

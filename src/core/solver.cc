#include "core/solver.h"

#include <algorithm>
#include <cmath>

#include "core/scaling.h"
#include "util/timer.h"

namespace krsp::core {

namespace {

graph::Cost ceil_of(const util::Rational& r) {
  KRSP_CHECK(r >= util::Rational(0));
  return (r.num() + r.den() - 1) / r.den();
}

Solution from_phase1(const Phase1Result& p1) {
  Solution s;
  s.telemetry.phase1_mcmf_calls = p1.mcmf_calls;
  s.telemetry.lambda = p1.lambda;
  s.telemetry.cost_lower_bound = p1.cost_lower_bound;
  switch (p1.status) {
    case Phase1Status::kNoKDisjointPaths:
      s.status = SolveStatus::kNoKDisjointPaths;
      return s;
    case Phase1Status::kInfeasible:
      s.status = SolveStatus::kInfeasible;
      return s;
    case Phase1Status::kOptimal:
      s.status = SolveStatus::kOptimal;
      s.telemetry.phase1_was_optimal = true;
      break;
    case Phase1Status::kApprox:
      s.status = SolveStatus::kApprox;
      break;
  }
  s.paths = p1.paths;
  s.cost = p1.cost;
  s.delay = p1.delay;
  return s;
}

}  // namespace

Solution KrspSolver::solve(const Instance& inst) const {
  inst.validate();
  const util::WallTimer timer;
  Solution s;
  switch (options_.mode) {
    case SolverOptions::Mode::kExactWeights:
      s = solve_exact_weights(inst);
      break;
    case SolverOptions::Mode::kScaled:
      s = solve_scaled(inst);
      break;
    case SolverOptions::Mode::kPhase1Only:
      s = solve_phase1_only(inst);
      break;
  }
  s.telemetry.wall_seconds = timer.seconds();
  return s;
}

Solution KrspSolver::solve_phase1_only(const Instance& inst) const {
  const auto p1 = phase1_lagrangian(inst);
  Solution s = from_phase1(p1);
  if (s.status == SolveStatus::kApprox && s.delay > inst.delay_bound)
    s.status = SolveStatus::kApproxDelayOver;
  return s;
}

Solution KrspSolver::solve_exact_weights(const Instance& inst) const {
  const auto p1 = phase1_lagrangian(inst);
  Solution s = from_phase1(p1);
  if (s.status != SolveStatus::kApprox) return s;  // optimal or no solution
  if (s.delay <= inst.delay_bound) return s;       // Lemma 5 already met D

  // Algorithm 1 with a binary search on the cap Ĉ over [max(1,⌈C_LP⌉),
  // cost(F_hi)]. Success is monotone above C_OPT; a minimal succeeding Ĉ†
  // adjacent to a failure satisfies Ĉ† <= C_OPT + 1, certifying
  // cost <= 2·(C_OPT + 1).
  KRSP_CHECK(p1.feasible_alternative.has_value());
  const PathSet& f_hi = *p1.feasible_alternative;
  const graph::Cost c_hi = f_hi.total_cost(inst.graph);
  const graph::Cost lo0 =
      std::max<graph::Cost>(1, ceil_of(p1.cost_lower_bound));
  const graph::Cost hi0 = std::max(lo0, c_hi);

  std::optional<CycleCancelResult> best_run;
  graph::Cost best_guess = 0;
  const auto run = [&](graph::Cost guess) -> bool {
    ++s.telemetry.guess_attempts;
    auto r = cancel_cycles(inst, p1.paths, guess, options_.cancel);
    if (r.status != CancelStatus::kSuccess) return false;
    if (!best_run || guess < best_guess) {
      best_run = std::move(r);
      best_guess = guess;
    }
    return true;
  };

  if (options_.guess == SolverOptions::GuessStrategy::kBinarySearch) {
    graph::Cost lo = lo0, hi = hi0;
    if (run(hi)) {
      while (lo < hi) {
        const graph::Cost mid = lo + (hi - lo) / 2;
        if (run(mid))
          hi = mid;
        else
          lo = mid + 1;
      }
    }
  } else {
    graph::Cost guess = lo0;
    while (!run(guess) && guess < hi0)
      guess = std::min<graph::Cost>(hi0, std::max<graph::Cost>(guess * 2, 1));
  }

  if (!best_run) {
    // Theory guarantees success at Ĉ = c_hi >= C_OPT; if an internal limit
    // tripped anyway, fall back to the feasible phase-1 alternative.
    s.telemetry.used_feasible_fallback = true;
    s.paths = f_hi;
    s.cost = c_hi;
    s.delay = f_hi.total_delay(inst.graph);
    s.status = SolveStatus::kApprox;
    return s;
  }

  s.telemetry.cost_guess_used = best_guess;
  s.telemetry.cancel = best_run->telemetry;
  // The phase-1 feasible alternative is itself a valid answer; keep the
  // cheaper of the two.
  if (c_hi < best_run->cost) {
    s.telemetry.used_feasible_fallback = true;
    s.paths = f_hi;
    s.cost = c_hi;
    s.delay = f_hi.total_delay(inst.graph);
  } else {
    s.paths = std::move(best_run->paths);
    s.cost = best_run->cost;
    s.delay = best_run->delay;
  }
  s.status = SolveStatus::kApprox;
  return s;
}

Solution KrspSolver::solve_scaled(const Instance& inst) const {
  // Phase 1 on the *original* weights settles feasibility questions exactly
  // and provides the Ĉ search range.
  const auto p1 = phase1_lagrangian(inst);
  Solution s = from_phase1(p1);
  if (s.status != SolveStatus::kApprox) return s;
  if (s.delay <= inst.delay_bound) return s;

  KRSP_CHECK(p1.feasible_alternative.has_value());
  const PathSet& f_hi = *p1.feasible_alternative;
  const graph::Cost c_hi = f_hi.total_cost(inst.graph);
  const graph::Cost lo0 =
      std::max<graph::Cost>(1, ceil_of(p1.cost_lower_bound));
  const graph::Cost hi0 = std::max(lo0, c_hi);

  // Internal ε2/2 keeps the flooring loss within the advertised (2+ε2).
  const double eps1 = options_.eps1;
  const double eps2 = options_.eps2 / 2.0;
  const auto delay_limit = static_cast<graph::Delay>(
      std::floor((1.0 + options_.eps1) * static_cast<double>(inst.delay_bound)));

  KrspSolver inner_solver{[&] {
    SolverOptions o = options_;
    o.mode = SolverOptions::Mode::kExactWeights;
    return o;
  }()};

  struct Attempt {
    Solution sol;        // in original weights
    graph::Cost guess;
  };
  std::optional<Attempt> best;
  const auto run = [&](graph::Cost guess) -> bool {
    ++s.telemetry.guess_attempts;
    const auto scaled = scale_instance(inst, eps1, eps2, guess);
    Solution inner = inner_solver.solve(scaled.scaled);
    if (!inner.has_paths()) return false;
    // Edge ids are shared between the scaled and original graphs.
    Solution mapped = inner;
    mapped.cost = inner.paths.total_cost(inst.graph);
    mapped.delay = inner.paths.total_delay(inst.graph);
    if (mapped.delay > delay_limit) return false;
    const auto threshold = static_cast<graph::Cost>(
        std::ceil((2.0 + options_.eps2) * static_cast<double>(guess)));
    if (mapped.cost > threshold) return false;
    if (!best || guess < best->guess) best = Attempt{std::move(mapped), guess};
    return true;
  };

  if (options_.guess == SolverOptions::GuessStrategy::kBinarySearch) {
    graph::Cost lo = lo0, hi = hi0;
    if (run(hi)) {
      while (lo < hi) {
        const graph::Cost mid = lo + (hi - lo) / 2;
        if (run(mid))
          hi = mid;
        else
          lo = mid + 1;
      }
    }
  } else {
    graph::Cost guess = lo0;
    while (!run(guess) && guess < hi0)
      guess = std::min<graph::Cost>(hi0, std::max<graph::Cost>(guess * 2, 1));
  }

  if (!best) {
    s.telemetry.used_feasible_fallback = true;
    s.paths = f_hi;
    s.cost = c_hi;
    s.delay = f_hi.total_delay(inst.graph);
    s.status = SolveStatus::kApprox;
    return s;
  }

  s.telemetry.cost_guess_used = best->guess;
  s.telemetry.cancel = best->sol.telemetry.cancel;
  if (c_hi < best->sol.cost) {
    s.telemetry.used_feasible_fallback = true;
    s.paths = f_hi;
    s.cost = c_hi;
    s.delay = f_hi.total_delay(inst.graph);
  } else {
    s.paths = std::move(best->sol.paths);
    s.cost = best->sol.cost;
    s.delay = best->sol.delay;
  }
  s.status = SolveStatus::kApprox;
  return s;
}

}  // namespace krsp::core

#include "core/solver.h"

#include <algorithm>
#include <cmath>

#include "core/scaling.h"
#include "core/workspace.h"
#include "util/timer.h"

namespace krsp::core {

namespace {

graph::Cost ceil_of(const util::Rational& r) {
  KRSP_CHECK(r >= util::Rational(0));
  return (r.num() + r.den() - 1) / r.den();
}

Solution from_phase1(const Phase1Result& p1) {
  Solution s;
  s.telemetry.phase1_mcmf_calls = p1.mcmf_calls;
  s.telemetry.lambda = p1.lambda;
  s.telemetry.cost_lower_bound = p1.cost_lower_bound;
  s.telemetry.deadline_expired = p1.deadline_hit;
  switch (p1.status) {
    case Phase1Status::kNoKDisjointPaths:
      s.status = SolveStatus::kNoKDisjointPaths;
      return s;
    case Phase1Status::kInfeasible:
      s.status = SolveStatus::kInfeasible;
      return s;
    case Phase1Status::kOptimal:
      s.status = SolveStatus::kOptimal;
      s.telemetry.phase1_was_optimal = true;
      break;
    case Phase1Status::kApprox:
      s.status = SolveStatus::kApprox;
      break;
  }
  s.paths = p1.paths;
  s.cost = p1.cost;
  s.delay = p1.delay;
  return s;
}

/// Phase 1 gets `fraction` of the remaining budget (exact feasibility
/// answers are cheap; the guess loops are where time goes).
util::Deadline stage_deadline(const util::Deadline& total, double fraction) {
  if (!total.bounded()) return total;
  const double remaining = std::max(0.0, total.remaining_seconds());
  return total.clipped_after_seconds(remaining * fraction);
}

}  // namespace

const char* degradation_step_name(DegradationStep step) {
  switch (step) {
    case DegradationStep::kNone:
      return "none";
    case DegradationStep::kScaledResult:
      return "scaled-result";
    case DegradationStep::kExactPartial:
      return "exact-partial";
    case DegradationStep::kPhase1Feasible:
      return "phase1-feasible";
    case DegradationStep::kReducedK:
      return "reduced-k";
    case DegradationStep::kOutage:
      return "outage";
  }
  return "unknown";
}

Solution KrspSolver::solve(const Instance& inst) const {
  return solve(inst, util::Deadline::after_seconds(options_.deadline_seconds));
}

Solution KrspSolver::solve(const Instance& inst,
                           const util::Deadline& deadline) const {
  return solve(inst, deadline, nullptr);
}

Solution KrspSolver::solve(const Instance& inst, const util::Deadline& deadline,
                           SolveWorkspace* ws) const {
  inst.validate();
  if (ws != nullptr) ++ws->solves_started;
  const util::WallTimer timer;
  Solution s;
  switch (options_.mode) {
    case SolverOptions::Mode::kExactWeights:
      s = solve_exact_weights(inst, deadline, ws);
      break;
    case SolverOptions::Mode::kScaled:
      s = solve_scaled(inst, deadline, ws);
      break;
    case SolverOptions::Mode::kPhase1Only:
      s = solve_phase1_only(inst, deadline, ws);
      break;
  }
  s.telemetry.wall_seconds = timer.seconds();
  return s;
}

Solution KrspSolver::solve_phase1_only(const Instance& inst,
                                       const util::Deadline& deadline,
                                       SolveWorkspace* ws) const {
  const auto p1 =
      phase1_lagrangian(inst, deadline, ws != nullptr ? &ws->mcmf : nullptr);
  Solution s = from_phase1(p1);
  if (s.status == SolveStatus::kApprox && s.delay > inst.delay_bound)
    s.status = SolveStatus::kApproxDelayOver;
  return s;
}

Solution KrspSolver::solve_exact_weights(const Instance& inst,
                                         const util::Deadline& deadline,
                                         SolveWorkspace* ws) const {
  const auto p1 = phase1_lagrangian(
      inst, stage_deadline(deadline, options_.phase1_deadline_fraction),
      ws != nullptr ? &ws->mcmf : nullptr);
  Solution s = from_phase1(p1);
  if (s.status != SolveStatus::kApprox) return s;  // optimal or no solution
  if (s.delay <= inst.delay_bound) return s;       // Lemma 5 already met D

  // Algorithm 1 with a binary search on the cap Ĉ over [max(1,⌈C_LP⌉),
  // cost(F_hi)]. Success is monotone above C_OPT; a minimal succeeding Ĉ†
  // adjacent to a failure satisfies Ĉ† <= C_OPT + 1, certifying
  // cost <= 2·(C_OPT + 1).
  KRSP_CHECK(p1.feasible_alternative.has_value());
  const PathSet& f_hi = *p1.feasible_alternative;
  const graph::Cost c_hi = f_hi.total_cost(inst.graph);
  const graph::Cost lo0 =
      std::max<graph::Cost>(1, ceil_of(p1.cost_lower_bound));
  const graph::Cost hi0 = std::max(lo0, c_hi);

  CycleCancelOptions cancel_options = options_.cancel;
  cancel_options.deadline = deadline;

  std::optional<CycleCancelResult> best_run;
  graph::Cost best_guess = 0;
  bool deadline_cut = false;
  const auto run = [&](graph::Cost guess) -> bool {
    if (deadline.expired()) {
      // Abandon the search, serve the best anytime result below.
      deadline_cut = true;
      return false;
    }
    ++s.telemetry.guess_attempts;
    auto r = cancel_cycles(inst, p1.paths, guess, cancel_options,
                           ws != nullptr ? &ws->finder : nullptr);
    if (r.status == CancelStatus::kDeadlineExpired) deadline_cut = true;
    if (r.status != CancelStatus::kSuccess) return false;
    if (!best_run || guess < best_guess) {
      best_run = std::move(r);
      best_guess = guess;
    }
    return true;
  };

  if (options_.guess == SolverOptions::GuessStrategy::kBinarySearch) {
    graph::Cost lo = lo0, hi = hi0;
    if (run(hi)) {
      while (lo < hi && !deadline_cut) {
        const graph::Cost mid = lo + (hi - lo) / 2;
        if (run(mid))
          hi = mid;
        else
          lo = mid + 1;
      }
    }
  } else {
    graph::Cost guess = lo0;
    // Saturating doubling: guess * 2 would wrap for guesses past
    // INT64_MAX/2 (huge cost bounds), so jump straight to hi0 instead.
    while (!run(guess) && guess < hi0 && !deadline_cut)
      guess = guess > hi0 / 2 ? hi0 : std::max<graph::Cost>(guess * 2, 1);
  }

  if (deadline_cut) s.telemetry.deadline_expired = true;

  if (!best_run) {
    // Deadline expiry, or an internal limit tripping where theory
    // guarantees success at Ĉ = c_hi >= C_OPT: fall back to the certified
    // delay-feasible phase-1 alternative.
    s.telemetry.used_feasible_fallback = true;
    if (deadline_cut)
      s.telemetry.degradation = DegradationStep::kPhase1Feasible;
    s.paths = f_hi;
    s.cost = c_hi;
    s.delay = f_hi.total_delay(inst.graph);
    s.status = SolveStatus::kApprox;
    return s;
  }

  // A cut-short search still certifies cost <= cost(start) + Ĉ† for the
  // best cap that succeeded — just not minimality of Ĉ†.
  if (deadline_cut) s.telemetry.degradation = DegradationStep::kExactPartial;
  s.telemetry.cost_guess_used = best_guess;
  s.telemetry.cancel = best_run->telemetry;
  // The phase-1 feasible alternative is itself a valid answer; keep the
  // cheaper of the two.
  if (c_hi < best_run->cost) {
    s.telemetry.used_feasible_fallback = true;
    s.paths = f_hi;
    s.cost = c_hi;
    s.delay = f_hi.total_delay(inst.graph);
  } else {
    s.paths = std::move(best_run->paths);
    s.cost = best_run->cost;
    s.delay = best_run->delay;
  }
  s.status = SolveStatus::kApprox;
  return s;
}

Solution KrspSolver::solve_scaled(const Instance& inst,
                                  const util::Deadline& deadline,
                                  SolveWorkspace* ws) const {
  // Phase 1 on the *original* weights settles feasibility questions exactly
  // and provides the Ĉ search range.
  const auto p1 = phase1_lagrangian(
      inst, stage_deadline(deadline, options_.phase1_deadline_fraction),
      ws != nullptr ? &ws->mcmf : nullptr);
  Solution s = from_phase1(p1);
  if (s.status != SolveStatus::kApprox) return s;
  if (s.delay <= inst.delay_bound) return s;

  KRSP_CHECK(p1.feasible_alternative.has_value());
  const PathSet& f_hi = *p1.feasible_alternative;
  const graph::Cost c_hi = f_hi.total_cost(inst.graph);
  const graph::Cost lo0 =
      std::max<graph::Cost>(1, ceil_of(p1.cost_lower_bound));
  const graph::Cost hi0 = std::max(lo0, c_hi);

  // Internal ε2/2 keeps the flooring loss within the advertised (2+ε2).
  const double eps1 = options_.eps1;
  const double eps2 = options_.eps2 / 2.0;
  const auto delay_limit = static_cast<graph::Delay>(
      std::floor((1.0 + options_.eps1) * static_cast<double>(inst.delay_bound)));

  KrspSolver inner_solver{[&] {
    SolverOptions o = options_;
    o.mode = SolverOptions::Mode::kExactWeights;
    return o;
  }()};

  struct Attempt {
    Solution sol;        // in original weights
    graph::Cost guess;
  };
  std::optional<Attempt> best;
  bool deadline_cut = false;
  const auto run = [&](graph::Cost guess) -> bool {
    if (deadline.expired()) {
      deadline_cut = true;
      return false;
    }
    ++s.telemetry.guess_attempts;
    const auto scaled = scale_instance(inst, eps1, eps2, guess);
    // The inner solve shares the same absolute deadline, so a slow guess
    // cannot starve the attempts after it of their own expiry check. It
    // also shares the workspace: the scaled graph differs per guess, but
    // the workspace re-keys itself by topology, and within one inner solve
    // the LARAC iterations still hit the cache.
    Solution inner = inner_solver.solve(scaled.scaled, deadline, ws);
    if (inner.telemetry.deadline_expired) deadline_cut = true;
    if (!inner.has_paths()) return false;
    // Edge ids are shared between the scaled and original graphs.
    Solution mapped = inner;
    mapped.cost = inner.paths.total_cost(inst.graph);
    mapped.delay = inner.paths.total_delay(inst.graph);
    if (mapped.delay > delay_limit) return false;
    const auto threshold = static_cast<graph::Cost>(
        std::ceil((2.0 + options_.eps2) * static_cast<double>(guess)));
    if (mapped.cost > threshold) return false;
    if (!best || guess < best->guess) best = Attempt{std::move(mapped), guess};
    return true;
  };

  if (options_.guess == SolverOptions::GuessStrategy::kBinarySearch) {
    graph::Cost lo = lo0, hi = hi0;
    if (run(hi)) {
      while (lo < hi && !deadline_cut) {
        const graph::Cost mid = lo + (hi - lo) / 2;
        if (run(mid))
          hi = mid;
        else
          lo = mid + 1;
      }
    }
  } else {
    graph::Cost guess = lo0;
    // Saturating doubling: guess * 2 would wrap for guesses past
    // INT64_MAX/2 (huge cost bounds), so jump straight to hi0 instead.
    while (!run(guess) && guess < hi0 && !deadline_cut)
      guess = guess > hi0 / 2 ? hi0 : std::max<graph::Cost>(guess * 2, 1);
  }

  if (deadline_cut) s.telemetry.deadline_expired = true;

  if (!best) {
    s.telemetry.used_feasible_fallback = true;
    if (deadline_cut)
      s.telemetry.degradation = DegradationStep::kPhase1Feasible;
    s.paths = f_hi;
    s.cost = c_hi;
    s.delay = f_hi.total_delay(inst.graph);
    s.status = SolveStatus::kApprox;
    return s;
  }

  if (deadline_cut) s.telemetry.degradation = DegradationStep::kScaledResult;
  s.telemetry.cost_guess_used = best->guess;
  s.telemetry.cancel = best->sol.telemetry.cancel;
  if (c_hi < best->sol.cost) {
    s.telemetry.used_feasible_fallback = true;
    s.paths = f_hi;
    s.cost = c_hi;
    s.delay = f_hi.total_delay(inst.graph);
  } else {
    s.paths = std::move(best->sol.paths);
    s.cost = best->sol.cost;
    s.delay = best->sol.delay;
  }
  s.status = SolveStatus::kApprox;
  return s;
}

}  // namespace krsp::core

// Bicameral cycle computation (Definition 10 + Algorithm 3).
//
// The finder searches the residual graph G̃ for a cycle O that is
//   type-0:  d(O) < 0, c(O) <= 0   or   d(O) <= 0, c(O) < 0
//   type-1:  d(O) < 0, 0 < c(O) <= cap,   d(O)/c(O) <= r
//   type-2:  d(O) >= 0, -cap <= c(O) < 0, d(O)/c(O) > r
//            (strict, strengthening Definition 10's >=; see classify())
// where r = ΔD/ΔC < 0 is the live ratio of Definition 10 and cap plays the
// role of C_OPT (the solver passes its certified cost guess Ĉ >= C_OPT).
//
// Realization of Algorithms 2–3: instead of materializing H_v^±(B) and
// solving LP (6), the finder runs a Bellman–Ford DP over the implicit
// product states (vertex, cost-layer) anchored at every vertex v — exactly
// the cycles of H_v^±(B) (Lemma 15) — bounded to n rounds, which suffices
// because the witness cycles of Theorem 16 (optimal ⊕ current) are simple.
// Min-delay closed walks are decomposed into simple residual cycles and
// classified; type-0 hits return immediately, otherwise the best qualifying
// type-1/type-2 candidate wins. Budgets B follow a doubling schedule up to
// cap (the binary-search refinement the paper sketches in §4.2); witness
// prefix confinement (ascent <= C_OPT <= cap) guarantees completeness at
// B = cap. The LP-based reference finder (core/lp_cycle_finder.h)
// cross-validates this component in tests.
//
// Note on Algorithm 3 step 2-3 as printed: the brief announcement selects
// O2 by "minimum d/c with c < 0" and compares absolute ratios; consistent
// with Definition 10 and the proofs of Lemma 12 / Theorem 16, the correct
// extremal choice is *maximum* d/c for type-2 (and minimum for type-1), and
// qualification is checked against r directly. We implement the latter and
// document the discrepancy here and in DESIGN.md.
#pragma once

#include <memory>
#include <optional>

#include "core/residual.h"
#include "util/rational.h"

namespace krsp::core {

enum class CycleType { kType0, kType1, kType2 };

struct FoundCycle {
  std::vector<graph::EdgeId> edges;  // residual edge ids
  graph::Cost cost = 0;
  graph::Delay delay = 0;
  CycleType type = CycleType::kType0;
};

struct BicameralQuery {
  /// Definition 10 cost cap (C_OPT stand-in; the solver's guess Ĉ).
  graph::Cost cap = 0;
  /// r = ΔD/ΔC. Must be negative in Algorithm 1's loop (delay over budget,
  /// cost below cap).
  util::Rational ratio = 0;
  /// Ablation switch: false reproduces the Figure-1 pathology by selecting
  /// the best-ratio delay-reducing cycle with no cost cap.
  bool enforce_cap = true;
};

struct BicameralStats {
  std::int64_t anchors_scanned = 0;
  std::int64_t walks_examined = 0;
  std::int64_t cycles_classified = 0;
  std::int64_t budgets_tried = 0;
};

/// Reusable scratch for BicameralCycleFinder::find: the layered Bellman–
/// Ford tables over the (vertex, cost-layer) product states, which dominate
/// the finder's allocations. Handing the same workspace to successive find
/// calls (the cancellation loop, repeat solves in the batch engine) keeps
/// the tables' storage alive across calls; dimensions are re-checked and
/// grown on demand, so any residual graph is safe. A workspace also pins
/// the scan to the serial anchor order (no OpenMP team) — the batch engine
/// parallelizes across solves, not inside one, and the serial scan returns
/// the same cycle as the parallel one by the tracker-merge-order argument
/// in bicameral.cc. Not thread-safe; use one per thread.
class BicameralWorkspace {
 public:
  BicameralWorkspace();
  ~BicameralWorkspace();
  BicameralWorkspace(BicameralWorkspace&&) noexcept;
  BicameralWorkspace& operator=(BicameralWorkspace&&) noexcept;
  BicameralWorkspace(const BicameralWorkspace&) = delete;
  BicameralWorkspace& operator=(const BicameralWorkspace&) = delete;

  struct Impl;  // defined in bicameral.cc
  [[nodiscard]] Impl& impl() const { return *impl_; }

 private:
  std::unique_ptr<Impl> impl_;
};

class BicameralCycleFinder {
 public:
  struct Options {
    /// First budget of the doubling schedule.
    graph::Cost initial_budget = 8;
    /// Hard bound on Bellman–Ford rounds per anchor; <= 0 means the number
    /// of residual vertices (the witness-cycle length bound).
    int max_rounds = 0;
  };

  BicameralCycleFinder() : options_(Options{}) {}
  explicit BicameralCycleFinder(Options options) : options_(options) {}

  /// Finds a bicameral cycle in `residual` per `query`, or nullopt if none
  /// exists (at any budget up to the cap / total-cost bound). `ws`
  /// (optional) reuses the DP tables across calls and selects the serial
  /// scan — same result, no allocation churn, no nested parallelism under
  /// the batch engine.
  [[nodiscard]] std::optional<FoundCycle> find(
      const ResidualGraph& residual, const BicameralQuery& query,
      BicameralStats* stats = nullptr, BicameralWorkspace* ws = nullptr) const;

  /// Classification per Definition 10 (exposed for tests and the LP
  /// reference finder).
  static std::optional<CycleType> classify(graph::Cost c, graph::Delay d,
                                           graph::Cost cap,
                                           const util::Rational& ratio,
                                           bool enforce_cap);

 private:
  Options options_;
};

}  // namespace krsp::core

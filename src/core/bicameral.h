// Bicameral cycle computation (Definition 10 + Algorithm 3).
//
// The finder searches the residual graph G̃ for a cycle O that is
//   type-0:  d(O) < 0, c(O) <= 0   or   d(O) <= 0, c(O) < 0
//   type-1:  d(O) < 0, 0 < c(O) <= cap,   d(O)/c(O) <= r
//   type-2:  d(O) >= 0, -cap <= c(O) < 0, d(O)/c(O) > r
//            (strict, strengthening Definition 10's >=; see classify())
// where r = ΔD/ΔC < 0 is the live ratio of Definition 10 and cap plays the
// role of C_OPT (the solver passes its certified cost guess Ĉ >= C_OPT).
//
// Realization of Algorithms 2–3: instead of materializing H_v^±(B) and
// solving LP (6), the finder runs a Bellman–Ford DP over the implicit
// product states (vertex, cost-layer), bounded per anchor to |SCC(anchor)|
// rounds (the witness cycles of Theorem 16 — optimal ⊕ current — are
// simple and confined to one strongly connected component). Min-delay
// closed walks are decomposed into simple residual cycles and classified;
// type-0 hits return immediately, otherwise the best qualifying
// type-1/type-2 candidate wins. Budgets B follow a doubling schedule up to
// cap (the binary-search refinement the paper sketches in §4.2); witness
// prefix confinement (ascent <= C_OPT <= cap) guarantees completeness at
// B = cap. The LP-based reference finder (core/lp_cycle_finder.h)
// cross-validates this component in tests.
//
// Residual-structure pruning (DESIGN.md §3). Every qualifying cycle has
// negative total cost or negative total delay, so it contains at least one
// arc with cost < 0 or delay < 0, and — like any cycle — lives entirely
// inside one SCC of G̃. The finder therefore anchors its H⁺ scans only at
// the *heads* of negative arcs (the min-cost-prefix rotation of a
// qualifying cycle starts at one) and its H⁻ scans only at the *tails*
// (max-prefix rotation), skips every SCC with no internal negative arc,
// runs each anchor's DP on its own SCC with compacted vertex ids
// (|scc|·(budget+1) states instead of n·(budget+1)), and stores the DP in
// flat rolling arrays. Options::disable_pruning keeps the same anchor
// semantics but executes on the full uncompacted state space with the
// legacy eagerly-cleared nested tables — the measured-identical ablation
// baseline for bench_kernel (E13) and the prune property test.
//
// Note on Algorithm 3 step 2-3 as printed: the brief announcement selects
// O2 by "minimum d/c with c < 0" and compares absolute ratios; consistent
// with Definition 10 and the proofs of Lemma 12 / Theorem 16, the correct
// extremal choice is *maximum* d/c for type-2 (and minimum for type-1), and
// qualification is checked against r directly. We implement the latter and
// document the discrepancy here and in DESIGN.md.
#pragma once

#include <memory>
#include <optional>

#include "core/residual.h"
#include "util/rational.h"

namespace krsp::core {

enum class CycleType { kType0, kType1, kType2 };

struct FoundCycle {
  std::vector<graph::EdgeId> edges;  // residual edge ids
  graph::Cost cost = 0;
  graph::Delay delay = 0;
  CycleType type = CycleType::kType0;
};

struct BicameralQuery {
  /// Definition 10 cost cap (C_OPT stand-in; the solver's guess Ĉ).
  graph::Cost cap = 0;
  /// r = ΔD/ΔC. Must be negative in Algorithm 1's loop (delay over budget,
  /// cost below cap).
  util::Rational ratio = 0;
  /// Ablation switch: false reproduces the Figure-1 pathology by selecting
  /// the best-ratio delay-reducing cycle with no cost cap.
  bool enforce_cap = true;
};

struct BicameralStats {
  std::int64_t anchors_scanned = 0;
  std::int64_t walks_examined = 0;
  std::int64_t cycles_classified = 0;
  std::int64_t budgets_tried = 0;
  /// Anchors NOT scanned relative to the classical all-vertices scan,
  /// summed over (budget, sign) passes: non-seed vertices plus seeds whose
  /// SCC has no internal negative arc.
  std::int64_t anchors_pruned = 0;
  /// SCCs containing at least one seed anchor but no internal negative arc
  /// — their anchors are provably barren and skipped (counted once per
  /// find() call). Always 0 when pruning is disabled.
  std::int64_t sccs_skipped = 0;
  /// High-water mark of the DP tables (dist rows + parent records) across
  /// all anchors, in bytes. Max-aggregated, never summed.
  std::int64_t peak_dp_bytes = 0;
};

/// Reusable scratch for BicameralCycleFinder::find: the layered Bellman–
/// Ford tables over the (vertex, cost-layer) product states, which dominate
/// the finder's allocations — flat rolling dist rows plus packed per-round
/// parent records, and the residual-structure analysis (SCC partition,
/// compacted per-SCC adjacency, seed anchor lists). Handing the same
/// workspace to successive find calls (the cancellation loop, repeat solves
/// in the batch engine) keeps the tables' storage alive across calls;
/// dimensions are re-checked and grown on demand, so any residual graph is
/// safe. A workspace also pins the scan to the serial anchor order (no
/// OpenMP team) — the batch engine parallelizes across solves, not inside
/// one, and the serial scan returns the same cycle as the parallel one by
/// the tracker-merge-order argument in bicameral.cc. Not thread-safe; use
/// one per thread.
class BicameralWorkspace {
 public:
  BicameralWorkspace();
  ~BicameralWorkspace();
  BicameralWorkspace(BicameralWorkspace&&) noexcept;
  BicameralWorkspace& operator=(BicameralWorkspace&&) noexcept;
  BicameralWorkspace(const BicameralWorkspace&) = delete;
  BicameralWorkspace& operator=(const BicameralWorkspace&) = delete;

  struct Impl;  // defined in bicameral.cc
  [[nodiscard]] Impl& impl() const { return *impl_; }

 private:
  std::unique_ptr<Impl> impl_;
};

class BicameralCycleFinder {
 public:
  struct Options {
    /// First budget of the doubling schedule.
    graph::Cost initial_budget = 8;
    /// Hard bound on Bellman–Ford rounds per anchor; <= 0 means the size of
    /// the anchor's SCC (the witness-cycle length bound).
    int max_rounds = 0;
    /// Ablation: run the same seed-anchored scans on the full n·(budget+1)
    /// state space with the legacy nested-vector tables instead of the
    /// SCC-compacted flat kernel. Bit-identical results, measured by
    /// bench_kernel (E13) and asserted by bicameral_prune_test.
    bool disable_pruning = false;
  };

  BicameralCycleFinder() : options_(Options{}) {}
  explicit BicameralCycleFinder(Options options) : options_(options) {}

  /// Finds a bicameral cycle in `residual` per `query`, or nullopt if none
  /// exists (at any budget up to the cap / total-cost bound). `ws`
  /// (optional) reuses the DP tables across calls and selects the serial
  /// scan — same result, no allocation churn, no nested parallelism under
  /// the batch engine.
  [[nodiscard]] std::optional<FoundCycle> find(
      const ResidualGraph& residual, const BicameralQuery& query,
      BicameralStats* stats = nullptr, BicameralWorkspace* ws = nullptr) const;

  /// Classification per Definition 10 (exposed for tests and the LP
  /// reference finder).
  static std::optional<CycleType> classify(graph::Cost c, graph::Delay d,
                                           graph::Cost cap,
                                           const util::Rational& ratio,
                                           bool enforce_cap);

 private:
  Options options_;
};

}  // namespace krsp::core

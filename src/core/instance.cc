#include "core/instance.h"

#include <functional>
#include <sstream>

#include "flow/dinic.h"
#include "flow/disjoint.h"

namespace krsp::core {

void Instance::validate() const {
  KRSP_CHECK_MSG(graph.is_vertex(s), "instance: bad source " << s);
  KRSP_CHECK_MSG(graph.is_vertex(t), "instance: bad sink " << t);
  KRSP_CHECK_MSG(s != t, "instance: s == t");
  KRSP_CHECK_MSG(k >= 1, "instance: k = " << k);
  KRSP_CHECK_MSG(delay_bound >= 0, "instance: D = " << delay_bound);
  for (const auto& e : graph.edges()) {
    KRSP_CHECK_MSG(e.cost >= 0, "instance: negative cost edge");
    KRSP_CHECK_MSG(e.delay >= 0, "instance: negative delay edge");
  }
}

std::string Instance::summary() const {
  std::ostringstream os;
  os << graph.summary() << " s=" << s << " t=" << t << " k=" << k
     << " D=" << delay_bound;
  return os.str();
}

bool has_k_disjoint_paths(const Instance& inst) {
  return flow::max_edge_disjoint_paths(inst.graph, inst.s, inst.t) >= inst.k;
}

std::optional<graph::Delay> min_possible_delay(const Instance& inst) {
  const auto best =
      flow::min_weight_disjoint_paths(inst.graph, inst.s, inst.t, inst.k,
                                      /*w_cost=*/0, /*w_delay=*/1);
  if (!best) return std::nullopt;
  return best->total_delay;
}

std::optional<Instance> make_random_instance(
    util::Rng& rng, const RandomInstanceOptions& options,
    const std::function<graph::Digraph(util::Rng&)>& draw) {
  KRSP_CHECK(options.k >= 1);
  KRSP_CHECK(options.delay_slack >= 0.0);
  for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
    Instance inst;
    inst.graph = draw(rng);
    if (inst.graph.num_vertices() < 2) continue;
    inst.s = options.s != graph::kInvalidVertex ? options.s : 0;
    inst.t = options.t != graph::kInvalidVertex
                 ? options.t
                 : static_cast<graph::VertexId>(inst.graph.num_vertices() - 1);
    if (!inst.graph.is_vertex(inst.s) || !inst.graph.is_vertex(inst.t) ||
        inst.s == inst.t)
      continue;
    inst.k = options.k;
    const auto min_delay = min_possible_delay(inst);
    if (!min_delay) continue;
    // Delay of the *min-cost* k-flow: the natural "free" end of the range.
    const auto by_cost = flow::min_weight_disjoint_paths(
        inst.graph, inst.s, inst.t, inst.k, /*w_cost=*/1, /*w_delay=*/0);
    KRSP_CHECK(by_cost.has_value());
    const auto spread =
        static_cast<double>(by_cost->total_delay - *min_delay);
    inst.delay_bound =
        *min_delay +
        static_cast<graph::Delay>(options.delay_slack * std::max(0.0, spread));
    inst.validate();
    return inst;
  }
  return std::nullopt;
}

std::optional<Instance> random_er_instance(util::Rng& rng, int n, double p,
                                           const RandomInstanceOptions& opt,
                                           const gen::WeightRange& w) {
  return make_random_instance(rng, opt, [&](util::Rng& r) {
    return gen::erdos_renyi(r, n, p, w);
  });
}

}  // namespace krsp::core

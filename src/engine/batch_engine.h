// Streaming solve dispatcher (implementation behind api::Engine).
//
// A fixed-size pool of worker threads drains a bounded MPMC work queue of
// submitted requests. Each worker owns one core::SolveWorkspace for its
// whole lifetime, so consecutive solves on a worker reuse the MCMF network,
// the bicameral DP tables, and the residual-graph storage instead of
// reallocating them (the workspace-reuse ablation of experiment E12 flips
// EngineOptions::reuse_workspaces off to measure exactly this effect).
//
// submit() enqueues one request and returns a promise-backed api::Ticket;
// solve_batch() is the one-shot convenience built on top (submit all, get
// all, results in request order). Both are safe to call from any number of
// threads concurrently — the serving layer's per-connection threads stream
// straight into the same queue.
//
// Scheduling never affects results: a request is solved by exactly one
// worker running the same serial algorithm any worker would run, and
// workspaces rebuild themselves on topology changes, so which worker picks
// which request is unobservable in the output (engine_test asserts
// bit-identical batches at 1/2/8 threads, and submit() against
// solve_batch()). Workers never run OpenMP teams: a workspace pins the
// bicameral finder to its serial scan, keeping the pool's parallelism
// strictly across requests.
//
// Backpressure and shutdown: queue_capacity bounds the waiting jobs —
// submit() blocks (never drops) while the queue is full. close() stops
// admissions; already-queued work still runs and fulfills its tickets.
// The destructor closes, drains, and joins, so no ticket is ever left
// dangling.
//
// Synchronization: one mutex guards the deque and the counters; promises
// are fulfilled outside the lock (the future handshake publishes the
// result — TSan-clean by construction; CI runs the engine and server
// tests under -fsanitize=thread).
#pragma once

#include <chrono>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "api/krsp.h"
#include "core/workspace.h"
#include "util/deadline.h"

namespace krsp::engine {

class BatchEngine {
 public:
  explicit BatchEngine(api::EngineOptions options);
  ~BatchEngine();  // close + drain + join: queued tickets all complete
  BatchEngine(const BatchEngine&) = delete;
  BatchEngine& operator=(const BatchEngine&) = delete;

  [[nodiscard]] int num_threads() const {
    return static_cast<int>(workers_.size());
  }

  /// Enqueues one request (blocking while the bounded queue is full) and
  /// returns its ticket. After close(): an already-fulfilled kFailed
  /// ticket.
  [[nodiscard]] api::Ticket submit(api::SolveRequest request);

  /// Same, but the solve's wall-clock budget is the given absolute
  /// deadline instead of request.deadline_seconds anchored at execution
  /// start (end-to-end accounting for the serving layer).
  [[nodiscard]] api::Ticket submit(api::SolveRequest request,
                                   const util::Deadline& deadline);

  /// Runs one batch to completion; results in request order. Reentrant:
  /// concurrent batches interleave on the shared queue.
  [[nodiscard]] std::vector<api::SolveResult> solve_batch(
      const std::vector<api::SolveRequest>& requests);

  void close();
  void drain();

  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] std::uint64_t submitted() const;
  [[nodiscard]] std::uint64_t completed() const;

 private:
  struct Job {
    api::SolveRequest request;
    util::Deadline deadline;  // meaningful only when deadline_override
    bool deadline_override = false;
    std::promise<api::SolveResult> promise;
    /// Stamped at enqueue; the worker charges [enqueued, claim) to
    /// SolveResult::queue_wait_seconds and the "queue_wait" span.
    std::chrono::steady_clock::time_point enqueued;
  };

  api::Ticket enqueue(api::SolveRequest request, const util::Deadline* dl);
  void worker_loop(int worker_index);

  const api::EngineOptions options_;
  std::vector<core::SolveWorkspace> workspaces_;  // one per worker, stable
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for jobs / shutdown
  std::condition_variable space_cv_;  // submitters wait for queue space
  std::condition_variable idle_cv_;   // drain() waits for completion
  std::deque<Job> queue_;
  std::size_t executing_ = 0;       // jobs claimed but not finished
  std::uint64_t submitted_ = 0;     // also the next ticket id
  std::uint64_t completed_ = 0;
  bool closed_ = false;    // no new submissions
  bool shutdown_ = false;  // workers exit once the queue is empty
};

}  // namespace krsp::engine

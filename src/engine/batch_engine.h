// Concurrent batch solve engine (implementation behind api::Engine).
//
// A fixed-size pool of worker threads drains a batch of SolveRequests from
// a shared index counter. Each worker owns one core::SolveWorkspace for its
// whole lifetime, so consecutive solves on a worker reuse the MCMF network,
// the bicameral DP tables, and the residual-graph storage instead of
// reallocating them (the workspace-reuse ablation of experiment E12 flips
// EngineOptions::reuse_workspaces off to measure exactly this effect).
//
// Scheduling never affects results: a request is solved by exactly one
// worker running the same serial algorithm any worker would run, and
// workspaces rebuild themselves on topology changes, so which worker picks
// which request is unobservable in the output (engine_test asserts
// bit-identical batches at 1/2/8 threads). Workers never run OpenMP teams:
// a workspace pins the bicameral finder to its serial scan, keeping the
// pool's parallelism strictly across requests.
//
// Synchronization: one mutex guards the batch pointer, the claim index,
// and the completion count; workers park on a condition variable between
// batches. Result slots are disjoint per request index, and the completion
// handshake publishes them to the caller (TSan-clean by construction; CI
// runs the engine tests under -fsanitize=thread).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "api/krsp.h"
#include "core/workspace.h"

namespace krsp::engine {

class BatchEngine {
 public:
  explicit BatchEngine(api::EngineOptions options);
  ~BatchEngine();
  BatchEngine(const BatchEngine&) = delete;
  BatchEngine& operator=(const BatchEngine&) = delete;

  [[nodiscard]] int num_threads() const {
    return static_cast<int>(workers_.size());
  }

  /// Runs one batch to completion; results in request order. One batch at
  /// a time per engine (api::Engine documents the contract).
  [[nodiscard]] std::vector<api::SolveResult> solve_batch(
      const std::vector<api::SolveRequest>& requests);

 private:
  void worker_loop(int worker_index);

  const api::EngineOptions options_;
  std::vector<core::SolveWorkspace> workspaces_;  // one per worker, stable
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for a batch / shutdown
  std::condition_variable done_cv_;  // solve_batch waits for completion
  const std::vector<api::SolveRequest>* batch_ = nullptr;
  std::vector<api::SolveResult>* results_ = nullptr;
  std::size_t next_ = 0;       // next unclaimed request index
  std::size_t completed_ = 0;  // requests finished in the current batch
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
};

}  // namespace krsp::engine

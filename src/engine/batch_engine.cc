#include "engine/batch_engine.h"

#include <algorithm>

namespace krsp::engine {

namespace {

int resolve_thread_count(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hw));
}

}  // namespace

BatchEngine::BatchEngine(api::EngineOptions options) : options_(options) {
  const int n = resolve_thread_count(options_.num_threads);
  workspaces_.resize(n);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

BatchEngine::~BatchEngine() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::vector<api::SolveResult> BatchEngine::solve_batch(
    const std::vector<api::SolveRequest>& requests) {
  std::vector<api::SolveResult> results(requests.size());
  if (requests.empty()) return results;
  std::unique_lock<std::mutex> lock(mu_);
  KRSP_CHECK_MSG(batch_ == nullptr,
                 "BatchEngine::solve_batch is not reentrant: one batch at a "
                 "time per engine");
  batch_ = &requests;
  results_ = &results;
  next_ = 0;
  completed_ = 0;
  ++generation_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [&] { return completed_ == requests.size(); });
  batch_ = nullptr;
  results_ = nullptr;
  return results;
}

void BatchEngine::worker_loop(int worker_index) {
  std::uint64_t seen_generation = 0;
  while (true) {
    std::unique_lock<std::mutex> lock(mu_);
    work_cv_.wait(lock, [&] {
      return shutdown_ || (batch_ != nullptr && generation_ != seen_generation);
    });
    if (shutdown_) return;
    seen_generation = generation_;

    while (batch_ != nullptr && next_ < batch_->size()) {
      const std::size_t i = next_++;
      const api::SolveRequest& request = (*batch_)[i];
      auto* result_slot = &(*results_)[i];
      lock.unlock();
      // Solve outside the lock. The slot is exclusively ours (disjoint
      // indices); publication to the caller happens via the completed_
      // handshake below.
      if (options_.reuse_workspaces) {
        *result_slot = api::Solver::solve(request, workspaces_[worker_index]);
      } else {
        core::SolveWorkspace fresh;
        *result_slot = api::Solver::solve(request, fresh);
      }
      lock.lock();
      if (++completed_ == batch_->size()) done_cv_.notify_all();
    }
  }
}

}  // namespace krsp::engine

#include "engine/batch_engine.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"

namespace krsp::engine {

namespace {

int resolve_thread_count(int requested) {
  if (requested > 0) return requested;
  if (requested < 0) return 1;  // documented clamp: negative means 1
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hw));  // hw may report 0
}

}  // namespace

BatchEngine::BatchEngine(api::EngineOptions options) : options_(options) {
  const int n = resolve_thread_count(options_.num_threads);
  workspaces_.resize(n);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

BatchEngine::~BatchEngine() {
  close();
  drain();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

api::Ticket BatchEngine::submit(api::SolveRequest request) {
  return enqueue(std::move(request), nullptr);
}

api::Ticket BatchEngine::submit(api::SolveRequest request,
                                const util::Deadline& deadline) {
  return enqueue(std::move(request), &deadline);
}

api::Ticket BatchEngine::enqueue(api::SolveRequest request,
                                 const util::Deadline* dl) {
  std::unique_lock<std::mutex> lock(mu_);
  if (options_.queue_capacity > 0)
    space_cv_.wait(lock, [&] {
      return closed_ || queue_.size() < options_.queue_capacity;
    });
  if (closed_) {
    // Graceful refusal: a fulfilled kFailed ticket, never an exception —
    // racing submitters during shutdown get the same error contract as any
    // per-request failure.
    api::SolveResult refused;
    refused.tag = request.tag;
    refused.status = api::SolveStatus::kFailed;
    refused.error = "engine is closed (draining or destroyed)";
    std::promise<api::SolveResult> p;
    p.set_value(std::move(refused));
    // kRefusedId, not submitted_: a refusal consumes no submission index,
    // so reusing the counter would alias the next accepted ticket's id.
    return api::Ticket(api::Ticket::kRefusedId, p.get_future());
  }
  Job job;
  job.request = std::move(request);
  if (dl != nullptr) {
    job.deadline = *dl;
    job.deadline_override = true;
  }
  job.enqueued = std::chrono::steady_clock::now();
  api::Ticket ticket(submitted_++, job.promise.get_future());
  queue_.push_back(std::move(job));
  lock.unlock();
  work_cv_.notify_one();
  return ticket;
}

std::vector<api::SolveResult> BatchEngine::solve_batch(
    const std::vector<api::SolveRequest>& requests) {
  std::vector<api::SolveResult> results(requests.size());
  if (requests.empty()) return results;
  std::vector<api::Ticket> tickets;
  tickets.reserve(requests.size());
  // Submission blocks on a bounded queue while workers drain — safe from
  // the caller's thread because the workers never wait on the caller.
  for (const auto& req : requests) tickets.push_back(submit(req));
  for (std::size_t i = 0; i < tickets.size(); ++i)
    results[i] = tickets[i].get();
  return results;
}

void BatchEngine::close() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  space_cv_.notify_all();  // blocked submitters now observe closed_
}

void BatchEngine::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && executing_ == 0; });
}

std::size_t BatchEngine::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::uint64_t BatchEngine::submitted() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return submitted_;
}

std::uint64_t BatchEngine::completed() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

void BatchEngine::worker_loop(int worker_index) {
  while (true) {
    std::unique_lock<std::mutex> lock(mu_);
    work_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (shutdown_) return;
      continue;
    }
    Job job = std::move(queue_.front());
    queue_.pop_front();
    ++executing_;
    lock.unlock();
    space_cv_.notify_one();

    const auto claimed = std::chrono::steady_clock::now();
    const double queue_wait =
        std::chrono::duration<double>(claimed - job.enqueued).count();
    // The queue-wait span spans two threads; reconstruct the start from
    // the wait measured against the same steady clock.
    const std::int64_t claim_ns = KRSP_OBS_NOW_NS();
    KRSP_OBS_RECORD(
        "queue_wait",
        claim_ns - static_cast<std::int64_t>(queue_wait * 1e9), claim_ns);

    // Solve outside the lock; the promise is exclusively ours and the
    // future handshake publishes the result to the ticket holder.
    api::SolveResult result;
    if (options_.reuse_workspaces) {
      result = job.deadline_override
                   ? api::Solver::solve(job.request, job.deadline,
                                        workspaces_[worker_index])
                   : api::Solver::solve(job.request,
                                        workspaces_[worker_index]);
    } else {
      core::SolveWorkspace fresh;
      result = job.deadline_override
                   ? api::Solver::solve(job.request, job.deadline, fresh)
                   : api::Solver::solve(job.request, fresh);
    }
    result.queue_wait_seconds = queue_wait;
    job.promise.set_value(std::move(result));

    lock.lock();
    --executing_;
    ++completed_;
    if (queue_.empty() && executing_ == 0) idle_cv_.notify_all();
    lock.unlock();
  }
}

}  // namespace krsp::engine

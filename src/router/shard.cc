#include "router/shard.h"

#include <chrono>
#include <utility>

namespace krsp::router {

namespace {

using Clock = std::chrono::steady_clock;

std::string shard_labels(const std::string& name, const char* outcome) {
  return "shard=\"" + name + "\",outcome=\"" + outcome + "\"";
}

}  // namespace

const char* shard_state_name(ShardState s) {
  switch (s) {
    case ShardState::kUp:
      return "up";
    case ShardState::kDown:
      return "down";
    case ShardState::kDraining:
      return "draining";
  }
  return "unknown";
}

Shard::Shard(std::string name, server::Endpoint endpoint,
             ShardOptions options)
    : name_(std::move(name)),
      endpoint_(std::move(endpoint)),
      options_([&options] {
        // The router's failover is the ring walk: a refused dial must
        // fail the forward immediately, never sit out a backoff aimed at
        // a dead endpoint.
        options.retry.fail_fast_on_refused = true;
        return options;
      }()),
      requests_ok_metric_(obs::Registry::global().counter(
          "krsp_router_requests_total", shard_labels(name_, "ok"))),
      requests_error_metric_(obs::Registry::global().counter(
          "krsp_router_requests_total", shard_labels(name_, "error"))),
      requests_refused_metric_(obs::Registry::global().counter(
          "krsp_router_requests_total", shard_labels(name_, "refused"))),
      forward_ns_metric_(obs::Registry::global().histogram(
          "krsp_router_forward_ns", "shard=\"" + name_ + "\"")) {}

std::unique_ptr<server::ResilientClient> Shard::acquire_client() {
  {
    const std::lock_guard<std::mutex> lock(pool_mu_);
    if (!pool_.empty()) {
      auto client = std::move(pool_.back());
      pool_.pop_back();
      return client;
    }
  }
  return std::make_unique<server::ResilientClient>(endpoint_,
                                                   options_.retry);
}

void Shard::release_client(std::unique_ptr<server::ResilientClient> client) {
  const std::lock_guard<std::mutex> lock(pool_mu_);
  pool_.push_back(std::move(client));
}

bool Shard::forward(const std::string& line, const std::string& id,
                    bool idempotent, std::string* response,
                    std::string* error, bool* refused) {
  *refused = false;
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  auto client = acquire_client();
  const auto t0 = Clock::now();
  const bool ok = client->request(line, id, idempotent, response, error);
  forward_ns_metric_.record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count()));
  if (ok) {
    forwards_ok_.fetch_add(1, std::memory_order_relaxed);
    requests_ok_metric_.inc();
    // A working forward is as good as a probe for health purposes.
    const std::lock_guard<std::mutex> lock(health_mu_);
    consecutive_failures_ = 0;
  } else if (client->last_failure_refused()) {
    *refused = true;
    forwards_refused_.fetch_add(1, std::memory_order_relaxed);
    requests_refused_metric_.inc();
    // Traffic discovers a dead shard faster than the probe tick: feed
    // the same consecutive-failure counter the prober uses.
    note_failure();
  } else {
    forwards_failed_.fetch_add(1, std::memory_order_relaxed);
    requests_error_metric_.inc();
    note_failure();
  }
  release_client(std::move(client));
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  return ok;
}

bool Shard::probe() {
  // The prober is a single thread, so one dedicated client (outside the
  // forward pool) is enough and keeps probe latency unpolluted by
  // forward traffic on the same connection.
  if (probe_client_ == nullptr) {
    server::RetryOptions retry = options_.retry;
    retry.max_retries = 0;
    retry.request_timeout_ms = options_.probe_timeout_ms;
    probe_client_ =
        std::make_unique<server::ResilientClient>(endpoint_, retry);
  }
  const auto t0 = Clock::now();
  std::string response;
  std::string error;
  const bool ok = probe_client_->request("{\"op\":\"stats\"}", "", true,
                                         &response, &error);
  if (ok) {
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    const double prev = ewma_probe_ms_.load(std::memory_order_relaxed);
    ewma_probe_ms_.store(
        prev == 0.0 ? ms
                    : options_.ewma_alpha * ms +
                          (1.0 - options_.ewma_alpha) * prev,
        std::memory_order_relaxed);
    probes_ok_.fetch_add(1, std::memory_order_relaxed);
    note_probe_success();
  } else {
    probes_failed_.fetch_add(1, std::memory_order_relaxed);
    note_failure();
  }
  return ok;
}

void Shard::note_failure() {
  const std::lock_guard<std::mutex> lock(health_mu_);
  consecutive_probe_successes_ = 0;
  if (state_.load(std::memory_order_acquire) != ShardState::kUp) return;
  if (++consecutive_failures_ >= options_.mark_down_after)
    state_.store(ShardState::kDown, std::memory_order_release);
}

void Shard::note_probe_success() {
  const std::lock_guard<std::mutex> lock(health_mu_);
  consecutive_failures_ = 0;
  if (state_.load(std::memory_order_acquire) != ShardState::kDown) return;
  if (++consecutive_probe_successes_ >= options_.mark_up_after) {
    consecutive_probe_successes_ = 0;
    recoveries_.fetch_add(1, std::memory_order_relaxed);
    state_.store(ShardState::kUp, std::memory_order_release);
  }
}

void Shard::fence() {
  const std::lock_guard<std::mutex> lock(health_mu_);
  state_.store(ShardState::kDraining, std::memory_order_release);
}

void Shard::send_shutdown() {
  auto client = acquire_client();
  std::string response;
  std::string error;
  // Best effort by design: a shard that died mid-drain cannot ack.
  (void)client->request("{\"op\":\"shutdown\"}", "", true, &response, &error);
  release_client(std::move(client));
}

}  // namespace krsp::router

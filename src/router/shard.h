// One health-tracked backend in the router's fleet.
//
// A Shard owns a pool of ResilientClients to one krsp_serve endpoint
// (one client per concurrent forward — clients are single-threaded, the
// router's connection threads are not) and the health state machine the
// prober drives:
//
//             failures >= mark_down_after
//        kUp ────────────────────────────────▶ kDown
//         ▲                                      │
//         └──────────────────────────────────────┘
//             probe successes >= mark_up_after
//
// Failures are *consecutive* and come from two sources that feed one
// counter: the prober's stats-op probes (EWMA latency on success) and
// refused forwards (a dead shard is usually discovered by traffic before
// the next probe tick). Hysteresis on both edges keeps one dropped probe
// from flapping the ring.
//
// kDraining is entered by fence() and is one-way: the shard leaves the
// ring, in-flight forwards finish (drain_wait), and the router then
// sends the shard its shutdown op.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "server/client.h"

namespace krsp::router {

enum class ShardState { kUp, kDown, kDraining };

[[nodiscard]] const char* shard_state_name(ShardState s);

struct ShardOptions {
  /// Consecutive failures (probe or refused forward) before mark-down.
  int mark_down_after = 3;
  /// Consecutive probe successes before a down shard rejoins the ring.
  int mark_up_after = 2;
  /// EWMA smoothing for probe latency (weight of the newest sample).
  double ewma_alpha = 0.3;
  /// Probe stats-op response wait.
  double probe_timeout_ms = 1000.0;
  /// Per-forward retry policy. fail_fast_on_refused is forced on: the
  /// router's failover is the ring walk, not per-shard backoff.
  server::RetryOptions retry;
};

class Shard {
 public:
  Shard(std::string name, server::Endpoint endpoint, ShardOptions options);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const server::Endpoint& endpoint() const { return endpoint_; }
  [[nodiscard]] ShardState state() const {
    return state_.load(std::memory_order_acquire);
  }
  /// Routable: up and not fenced.
  [[nodiscard]] bool accepting() const { return state() == ShardState::kUp; }

  /// Forwards one request line and waits for the id-matched response.
  /// *refused is set when the failure was refused-at-connect (nothing
  /// delivered — the caller may fail over even a non-idempotent request,
  /// and the refusal feeds the mark-down counter).
  [[nodiscard]] bool forward(const std::string& line, const std::string& id,
                             bool idempotent, std::string* response,
                             std::string* error, bool* refused);

  /// One health probe (stats op, EWMA'd latency), driving the state
  /// machine. Returns probe success.
  bool probe();

  /// Fences the shard: kDraining, no new forwards. One-way.
  void fence();

  /// True once every in-flight forward has returned.
  [[nodiscard]] bool quiesced() const {
    return in_flight_.load(std::memory_order_acquire) == 0;
  }

  /// Sends the wire shutdown op (used after fence + quiesce). Best
  /// effort: a dead shard is already as shut down as it gets.
  void send_shutdown();

  [[nodiscard]] double ewma_probe_ms() const {
    return ewma_probe_ms_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t in_flight() const {
    return static_cast<std::uint64_t>(
        in_flight_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] std::uint64_t forwards_ok() const {
    return forwards_ok_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t forwards_failed() const {
    return forwards_failed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t forwards_refused() const {
    return forwards_refused_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t probes_ok() const {
    return probes_ok_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t probes_failed() const {
    return probes_failed_.load(std::memory_order_relaxed);
  }
  /// kDown -> kUp transitions observed (mark-up events).
  [[nodiscard]] std::uint64_t recoveries() const {
    return recoveries_.load(std::memory_order_relaxed);
  }

 private:
  class ClientLease;

  /// Checks a client out of the pool (growing it on demand) and returns
  /// it on destruction.
  [[nodiscard]] std::unique_ptr<server::ResilientClient> acquire_client();
  void release_client(std::unique_ptr<server::ResilientClient> client);
  void note_failure();  // consecutive-failure edge of the state machine
  void note_probe_success();

  const std::string name_;
  const server::Endpoint endpoint_;
  const ShardOptions options_;

  std::atomic<ShardState> state_{ShardState::kUp};
  std::mutex health_mu_;  // guards the consecutive counters
  int consecutive_failures_ = 0;
  int consecutive_probe_successes_ = 0;

  std::mutex pool_mu_;
  std::vector<std::unique_ptr<server::ResilientClient>> pool_;
  std::unique_ptr<server::ResilientClient> probe_client_;  // prober-only

  std::atomic<int> in_flight_{0};
  std::atomic<double> ewma_probe_ms_{0.0};
  std::atomic<std::uint64_t> forwards_ok_{0};
  std::atomic<std::uint64_t> forwards_failed_{0};
  std::atomic<std::uint64_t> forwards_refused_{0};
  std::atomic<std::uint64_t> probes_ok_{0};
  std::atomic<std::uint64_t> probes_failed_{0};
  std::atomic<std::uint64_t> recoveries_{0};

  // Per-shard obs, resolved once at construction (labels carry the shard
  // name): krsp_router_requests_total{shard,outcome} + forward latency.
  obs::Counter& requests_ok_metric_;
  obs::Counter& requests_error_metric_;
  obs::Counter& requests_refused_metric_;
  obs::Histogram& forward_ns_metric_;
};

}  // namespace krsp::router

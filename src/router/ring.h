// Consistent-hash ring with virtual nodes — the router's shard picker.
//
// Each shard contributes `vnodes` points on the 64-bit ring; a request
// key (the splitmix64 half of api::request_fingerprints, identical for
// the v1-inline and v2-catalog forms of the same query) is owned by the
// first point clockwise from it. Properties the tests pin:
//
//   * deterministic — points depend only on shard *names* (FNV-1a of the
//     name seeds a splitmix64 stream), so assignment survives router
//     restarts and is independent of membership-listing order;
//   * balanced — with 128 vnodes/shard the max keyspace share stays
//     under 2/|shards| (router_ring_test measures it);
//   * minimal disruption — removing one shard remaps only the keys that
//     shard owned; every other key keeps its owner (the classic
//     consistent-hashing contract, and what keeps N-1 shard caches hot
//     through a drain).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace krsp::router {

class HashRing {
 public:
  /// 128 points/shard keeps max imbalance < 2x at single-digit fleet
  /// sizes while the per-request lookup stays one binary search over
  /// |shards|*128 points.
  static constexpr int kDefaultVnodes = 128;

  HashRing() = default;
  explicit HashRing(std::vector<std::string> shard_names,
                    int vnodes = kDefaultVnodes);

  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] std::size_t num_shards() const { return names_.size(); }
  [[nodiscard]] const std::vector<std::string>& shard_names() const {
    return names_;
  }
  [[nodiscard]] int vnodes() const { return vnodes_; }

  /// Index (into shard_names()) of the shard owning `key`. Ring must be
  /// non-empty.
  [[nodiscard]] std::size_t pick(std::uint64_t key) const;

  /// Distinct shard indices in ring-walk order starting at the owner of
  /// `key` — the router's failover order. At most `limit` entries
  /// (0 = all shards).
  [[nodiscard]] std::vector<std::size_t> successors(std::uint64_t key,
                                                    std::size_t limit) const;

  /// Fraction of the 64-bit keyspace owned by shard `shard` — exact arc
  /// accounting, used by the balance test and the router's stats op.
  [[nodiscard]] double keyspace_share(std::size_t shard) const;

  /// The j-th ring point of a shard name: splitmix64 stream seeded with
  /// FNV-1a(name), advanced j+1 steps. Exposed so the golden-assignment
  /// test can pin the formula itself.
  [[nodiscard]] static std::uint64_t point(const std::string& name,
                                           int vnode);

 private:
  struct Point {
    std::uint64_t position;
    std::size_t shard;  // index into names_
  };

  std::vector<std::string> names_;
  std::vector<Point> points_;  // sorted by (position, shard)
  int vnodes_ = kDefaultVnodes;
};

}  // namespace krsp::router

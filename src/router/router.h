// The fleet front tier: a LineHandler that consistent-hashes solve
// requests across N krsp_serve shards.
//
// Wire surface (same newline-framed JSON as a shard, so every existing
// client — krsp_loadgen included — can point at a router unchanged):
//
//   solve       routed by hash affinity (see below), answered with the
//               shard's response plus an injected "served_by":"<shard>"
//               field (optional, ignored by v1 clients);
//   stats       answered by the router itself: per-shard health, ring
//               shares, forward counters ("router":true marks the shape);
//   metrics     the router process's obs exposition;
//   ping        answered locally, same bytes as a shard's pong;
//   topologies, topology
//               forwarded to the first routable shard (catalog discovery
//               is fleet-uniform by deployment contract);
//   drain       {"op":"drain","shard":"<name>"}: fence the shard, pull
//               its ring segment, wait out its in-flight forwards, then
//               send it the wire shutdown op;
//   shutdown    ack and begin the router's own graceful drain.
//
// Routing: the ring key is api::request_fingerprints(request).verify —
// the same splitmix64 fingerprint that keys shard result caches — so the
// v1-inline and v2-catalog forms of one query land on one shard and its
// cache stays hot for both. Requests the router cannot lower (no
// --catalog, malformed) fall back to a deterministic hash of the raw
// request fields: still a stable assignment, still forwarded, and the
// shard produces the canonical error response if one is due.
//
// Failover: walk the ring clockwise from the owner. Refused-at-connect
// means nothing was delivered — always try the next shard (and feed the
// owner's mark-down counter). Any other failure may have reached the
// shard, so only idempotent (deadline-free) requests fail over; a
// deadline-bounded request fails to the client, at-most-once preserved
// end to end.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "router/ring.h"
#include "router/shard.h"
#include "server/transport.h"
#include "server/wire.h"
#include "store/catalog.h"

namespace krsp::router {

struct RouterOptions {
  int vnodes = HashRing::kDefaultVnodes;
  /// Health-probe sweep period; 0 disables the prober (tests drive
  /// probes by hand).
  int probe_interval_ms = 200;
  int mark_down_after = 3;
  int mark_up_after = 2;
  double probe_timeout_ms = 1000.0;
  /// Per-forward response wait (0 = block indefinitely).
  double forward_timeout_ms = 0.0;
  /// Retransmissions per shard before walking on (idempotent only).
  int forward_retries = 0;
  /// Bound on the drain op's wait for in-flight forwards to finish.
  double drain_wait_ms = 5000.0;
};

class Router final : public server::LineHandler {
 public:
  /// `catalog` (optional, unowned) lets the router compute true request
  /// fingerprints for v2 requests — without it they still route (raw
  /// field hash) but lose cross-form cache affinity.
  Router(const std::vector<server::Endpoint>& shard_endpoints,
         const store::TopologyCatalog* catalog, RouterOptions options = {});
  ~Router() override;
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  [[nodiscard]] std::string handle_line(const std::string& line) override;
  [[nodiscard]] bool shutdown_requested() const override {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Starts the background prober (no-op when probe_interval_ms == 0).
  void start_probing();
  /// Stops the prober; called by the dtor, idempotent.
  void stop();

  /// One probe sweep over all shards, rebuilding the ring on any state
  /// change — exactly what the prober does each tick; public so tests
  /// and the tool can converge health deterministically.
  void probe_all();

  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  [[nodiscard]] const Shard& shard(std::size_t i) const {
    return *shards_[i];
  }
  /// Shards currently in the ring (routable).
  [[nodiscard]] std::size_t ring_size() const;
  [[nodiscard]] std::uint64_t requests_routed() const {
    return requests_routed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t no_shard_errors() const {
    return no_shard_errors_.load(std::memory_order_relaxed);
  }

  /// The ring key for a request line — exposed for affinity tests.
  [[nodiscard]] std::uint64_t route_key(const std::string& line) const;

 private:
  /// An immutable routing table: a ring over the names of the shards
  /// that were routable when it was built, plus the parallel Shard list.
  struct Snapshot {
    HashRing ring;
    std::vector<Shard*> members;
  };

  [[nodiscard]] std::shared_ptr<const Snapshot> snapshot() const;
  void rebuild_ring();
  [[nodiscard]] std::string route_solve(const server::wire::Value& req,
                                        const std::string& line);
  [[nodiscard]] std::string forward_control(const std::string& line);
  [[nodiscard]] std::string handle_router_stats();
  [[nodiscard]] std::string handle_drain(const server::wire::Value& req);
  [[nodiscard]] std::uint64_t ring_key_for(const server::wire::Value& req,
                                           const std::string& line) const;

  const store::TopologyCatalog* catalog_;
  const RouterOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex ring_mu_;
  std::shared_ptr<const Snapshot> snapshot_;

  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> requests_routed_{0};
  std::atomic<std::uint64_t> no_shard_errors_{0};

  std::mutex prober_mu_;
  std::condition_variable prober_cv_;
  bool prober_stop_ = false;
  std::thread prober_;

  obs::Counter& no_shard_metric_;
};

}  // namespace krsp::router

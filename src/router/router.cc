#include "router/router.h"

#include <chrono>
#include <thread>
#include <utility>

#include "api/fingerprint.h"
#include "obs/trace.h"
#include "server/request_parse.h"

namespace krsp::router {

namespace {

using server::wire::ObjectWriter;
using server::wire::Value;

std::string error_line(const std::string& what, const std::string& id = "") {
  ObjectWriter w;
  if (!id.empty()) w.field("id", id);
  w.field("ok", false);
  w.field("error", what);
  return w.done();
}

/// FNV-1a over raw bytes — the routing fallback when a request cannot be
/// lowered to an api::SolveRequest (no catalog on the router, malformed
/// payload). Stable across routers; no cross-form affinity.
std::uint64_t fnv1a_bytes(const std::string& s, std::uint64_t h) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Injects `,"served_by":"<name>"` before the response's closing brace.
/// The field is additive and optional: v1 clients that match on the
/// documented fields ignore it (docs/API.md).
std::string inject_served_by(std::string response, const std::string& name) {
  if (response.empty() || response.back() != '}') return response;
  response.pop_back();
  ObjectWriter tail;
  tail.field("served_by", name);
  std::string tail_str = tail.done();  // {"served_by":"..."}
  response += ',';
  response.append(tail_str, 1, tail_str.size() - 1);
  return response;
}

}  // namespace

Router::Router(const std::vector<server::Endpoint>& shard_endpoints,
               const store::TopologyCatalog* catalog, RouterOptions options)
    : catalog_(catalog),
      options_(options),
      no_shard_metric_(obs::Registry::global().counter(
          "krsp_router_requests_total", "shard=\"-\",outcome=\"no_shard\"")) {
  ShardOptions shard_options;
  shard_options.mark_down_after = options_.mark_down_after;
  shard_options.mark_up_after = options_.mark_up_after;
  shard_options.probe_timeout_ms = options_.probe_timeout_ms;
  shard_options.retry.max_retries = options_.forward_retries;
  shard_options.retry.request_timeout_ms = options_.forward_timeout_ms;
  shards_.reserve(shard_endpoints.size());
  for (const auto& ep : shard_endpoints)
    // The endpoint spelling is the shard's name: stable across restarts,
    // unique within a fleet, and exactly what an operator greps for.
    shards_.push_back(
        std::make_unique<Shard>(ep.describe(), ep, shard_options));
  rebuild_ring();
}

Router::~Router() { stop(); }

std::shared_ptr<const Router::Snapshot> Router::snapshot() const {
  const std::lock_guard<std::mutex> lock(ring_mu_);
  return snapshot_;
}

std::size_t Router::ring_size() const { return snapshot()->members.size(); }

void Router::rebuild_ring() {
  auto next = std::make_shared<Snapshot>();
  std::vector<std::string> names;
  for (const auto& shard : shards_) {
    if (!shard->accepting()) continue;
    names.push_back(shard->name());
    next->members.push_back(shard.get());
  }
  next->ring = HashRing(std::move(names), options_.vnodes);
  const std::lock_guard<std::mutex> lock(ring_mu_);
  snapshot_ = std::move(next);
}

void Router::probe_all() {
  bool changed = false;
  for (const auto& shard : shards_) {
    if (shard->state() == ShardState::kDraining) continue;
    const ShardState before = shard->state();
    (void)shard->probe();
    changed = changed || shard->state() != before;
  }
  if (changed) rebuild_ring();
}

void Router::start_probing() {
  if (options_.probe_interval_ms <= 0 || prober_.joinable()) return;
  prober_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(prober_mu_);
    while (!prober_stop_) {
      lock.unlock();
      probe_all();
      lock.lock();
      prober_cv_.wait_for(
          lock, std::chrono::milliseconds(options_.probe_interval_ms),
          [this] { return prober_stop_; });
    }
  });
}

void Router::stop() {
  {
    const std::lock_guard<std::mutex> lock(prober_mu_);
    prober_stop_ = true;
  }
  prober_cv_.notify_all();
  if (prober_.joinable()) prober_.join();
}

std::uint64_t Router::ring_key_for(const Value& req,
                                   const std::string& line) const {
  // The real fingerprint when the request lowers (the same computation
  // the shard's result cache keys on): v1 and v2 forms of one query get
  // one key, so the owning shard's cache is hot for both.
  api::SolveRequest request;
  std::string parse_error;
  if (server::parse_solve_request(req, catalog_, &request, nullptr,
                                  &parse_error))
    return api::request_fingerprints(request).verify;
  // Fallback: stable hash of the raw routing-relevant fields. The id is
  // deliberately excluded so identical queries still share a shard.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char* key : {"topology", "instance", "mode", "guess", "class"})
    h = fnv1a_bytes(req.get_string(key), h + 1);
  for (const char* key : {"s", "t", "k", "delay_bound"})
    h = fnv1a_bytes(std::to_string(req.get_int(key, -1)), h + 1);
  for (const char* key : {"eps", "eps1", "eps2"})
    h = fnv1a_bytes(std::to_string(req.get_number(key, -1.0)), h + 1);
  if (h == 0) h = fnv1a_bytes(line, 0xcbf29ce484222325ULL);
  return h;
}

std::uint64_t Router::route_key(const std::string& line) const {
  const auto req = server::wire::parse(line);
  if (!req.has_value() || req->type != Value::Type::kObject)
    return fnv1a_bytes(line, 0xcbf29ce484222325ULL);
  return ring_key_for(*req, line);
}

std::string Router::route_solve(const Value& req, const std::string& line) {
  const std::string id = req.get_string("id");
  // Deadline-free solves are idempotent (pure functions of the request);
  // deadline-bounded ones are anytime and must reach at most one shard —
  // the same rule ResilientClient applies, enforced here fleet-wide.
  const bool idempotent = req.get_number("deadline", 0.0) <= 0.0;

  std::shared_ptr<const Snapshot> snap;
  std::vector<std::size_t> order;
  {
    KRSP_OBS_SPAN("route_pick");
    snap = snapshot();
    if (!snap->ring.empty())
      order = snap->ring.successors(ring_key_for(req, line), 0);
  }

  std::string last_error;
  bool ring_changed = false;
  for (const std::size_t index : order) {
    Shard* shard = snap->members[index];
    // The snapshot may be stale: skip shards that went down or started
    // draining since it was built.
    if (!shard->accepting()) continue;
    std::string response;
    std::string error;
    bool refused = false;
    bool ok;
    {
      KRSP_OBS_SPAN("shard_forward");
      ok = shard->forward(line, id, idempotent, &response, &error, &refused);
    }
    if (ok) {
      if (ring_changed) rebuild_ring();
      requests_routed_.fetch_add(1, std::memory_order_relaxed);
      return inject_served_by(std::move(response), shard->name());
    }
    last_error = shard->name() + ": " + error;
    if (refused) {
      // Nothing was delivered — even a non-idempotent request may walk
      // on. The refusal already fed the shard's mark-down counter; the
      // ring is rebuilt once the walk settles.
      ring_changed = true;
      continue;
    }
    if (!idempotent) {
      // The request may have reached the shard: at-most-once forbids a
      // second delivery anywhere else.
      if (ring_changed) rebuild_ring();
      return error_line(
          "forward failed after possible delivery (not retried): " +
              last_error,
          id);
    }
  }
  if (ring_changed) rebuild_ring();
  no_shard_errors_.fetch_add(1, std::memory_order_relaxed);
  no_shard_metric_.inc();
  return error_line(last_error.empty() ? "no shard available"
                                       : "no shard available: " + last_error,
                    id);
}

std::string Router::forward_control(const std::string& line) {
  // Discovery ops are fleet-uniform (every shard serves one catalog by
  // deployment contract): any routable shard's answer is the answer.
  const auto snap = snapshot();
  std::string last_error;
  for (Shard* shard : snap->members) {
    if (!shard->accepting()) continue;
    std::string response;
    std::string error;
    bool refused = false;
    if (shard->forward(line, "", true, &response, &error, &refused))
      return response;
    last_error = shard->name() + ": " + error;
  }
  return error_line(last_error.empty() ? "no shard available"
                                       : "no shard available: " + last_error);
}

std::string Router::handle_router_stats() {
  const auto snap = snapshot();
  ObjectWriter w;
  w.field("ok", true);
  w.field("protocol_version",
          static_cast<std::int64_t>(server::kProtocolVersion));
  w.field("router", true);
  w.field("shards", static_cast<std::int64_t>(shards_.size()));
  w.field("ring_shards", static_cast<std::int64_t>(snap->members.size()));
  w.field("vnodes", static_cast<std::int64_t>(options_.vnodes));
  w.field("requests_routed", requests_routed());
  w.field("no_shard_errors", no_shard_errors());
  std::string arr = "[";
  bool first = true;
  for (const auto& shard : shards_) {
    if (!first) arr.push_back(',');
    first = false;
    // Ring share: position of this shard in the snapshot's ring, if any.
    double share = 0.0;
    for (std::size_t i = 0; i < snap->members.size(); ++i) {
      if (snap->members[i] != shard.get()) continue;
      share = snap->ring.keyspace_share(i);
      break;
    }
    ObjectWriter entry;
    entry.field("name", shard->name());
    entry.field("state", shard_state_name(shard->state()));
    entry.field("ewma_probe_ms", shard->ewma_probe_ms());
    entry.field("keyspace_share", share);
    entry.field("in_flight", shard->in_flight());
    entry.field("forwards_ok", shard->forwards_ok());
    entry.field("forwards_failed", shard->forwards_failed());
    entry.field("forwards_refused", shard->forwards_refused());
    entry.field("probes_ok", shard->probes_ok());
    entry.field("probes_failed", shard->probes_failed());
    entry.field("recoveries", shard->recoveries());
    arr += entry.done();
  }
  arr.push_back(']');
  w.raw("shard_stats", arr);
  return w.done();
}

std::string Router::handle_drain(const Value& req) {
  const std::string name = req.get_string("shard");
  if (name.empty())
    return error_line("drain op requires a \"shard\" field (shard name)");
  Shard* target = nullptr;
  for (const auto& shard : shards_) {
    if (shard->name() != name) continue;
    target = shard.get();
    break;
  }
  if (target == nullptr) return error_line("unknown shard: " + name);

  // Fence first, then pull the ring segment: new requests rebalance to
  // the survivors while in-flight forwards finish on the draining shard.
  target->fence();
  rebuild_ring();
  const auto give_up = std::chrono::steady_clock::now() +
                       std::chrono::duration<double, std::milli>(
                           options_.drain_wait_ms);
  while (!target->quiesced() &&
         std::chrono::steady_clock::now() < give_up)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const bool quiesced = target->quiesced();
  target->send_shutdown();

  ObjectWriter w;
  w.field("ok", true);
  w.field("shard", name);
  w.field("drained", true);
  w.field("quiesced", quiesced);
  return w.done();
}

std::string Router::handle_line(const std::string& line) {
  KRSP_OBS_SPAN("wire_handle");
  std::string parse_error;
  const auto req = server::wire::parse(line, &parse_error);
  if (!req.has_value()) return error_line("bad json: " + parse_error);
  if (req->type != Value::Type::kObject)
    return error_line("request must be a json object");

  const std::string op = req->get_string("op", "solve");
  if (op == "solve") return route_solve(*req, line);
  if (op == "stats") return handle_router_stats();
  if (op == "metrics") {
    ObjectWriter w;
    w.field("ok", true);
    w.field("protocol_version",
            static_cast<std::int64_t>(server::kProtocolVersion));
    w.field("metrics", obs::Registry::global().render_prometheus());
    return w.done();
  }
  if (op == "topologies" || op == "topology") return forward_control(line);
  if (op == "drain") return handle_drain(*req);
  if (op == "ping")
    return ObjectWriter().field("ok", true).field("pong", true).done();
  if (op == "shutdown") {
    shutdown_.store(true, std::memory_order_release);
    return ObjectWriter().field("ok", true).field("draining", true).done();
  }
  return error_line("unknown op: " + op);
}

}  // namespace krsp::router

#include "router/ring.h"

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"

namespace krsp::router {

namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::uint64_t HashRing::point(const std::string& name, int vnode) {
  std::uint64_t state = fnv1a(name);
  std::uint64_t p = 0;
  for (int j = 0; j <= vnode; ++j) p = util::splitmix64(state);
  return p;
}

HashRing::HashRing(std::vector<std::string> shard_names, int vnodes)
    : names_(std::move(shard_names)), vnodes_(vnodes) {
  KRSP_CHECK_MSG(vnodes_ > 0, "HashRing: vnodes must be positive");
  points_.reserve(names_.size() * static_cast<std::size_t>(vnodes_));
  for (std::size_t i = 0; i < names_.size(); ++i) {
    // One splitmix64 stream per shard, seeded by the name alone: the
    // same shard lands on the same points in every router that knows it,
    // whatever else is in the fleet.
    std::uint64_t state = fnv1a(names_[i]);
    for (int j = 0; j < vnodes_; ++j)
      points_.push_back({util::splitmix64(state), i});
  }
  // Position collisions across shards are ~impossible (64-bit points) but
  // the shard tiebreak keeps even that case deterministic.
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              return a.position != b.position ? a.position < b.position
                                              : a.shard < b.shard;
            });
}

std::size_t HashRing::pick(std::uint64_t key) const {
  KRSP_CHECK_MSG(!points_.empty(), "HashRing::pick on an empty ring");
  // Owner = first point at or clockwise of the key, wrapping at the top.
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), key,
      [](const Point& p, std::uint64_t k) { return p.position < k; });
  return (it == points_.end() ? points_.front() : *it).shard;
}

std::vector<std::size_t> HashRing::successors(std::uint64_t key,
                                              std::size_t limit) const {
  std::vector<std::size_t> order;
  if (points_.empty()) return order;
  if (limit == 0 || limit > names_.size()) limit = names_.size();
  order.reserve(limit);
  std::vector<bool> seen(names_.size(), false);
  const auto first = std::lower_bound(
      points_.begin(), points_.end(), key,
      [](const Point& p, std::uint64_t k) { return p.position < k; });
  const std::size_t start =
      first == points_.end()
          ? 0
          : static_cast<std::size_t>(first - points_.begin());
  for (std::size_t step = 0;
       step < points_.size() && order.size() < limit; ++step) {
    const std::size_t shard =
        points_[(start + step) % points_.size()].shard;
    if (seen[shard]) continue;
    seen[shard] = true;
    order.push_back(shard);
  }
  return order;
}

double HashRing::keyspace_share(std::size_t shard) const {
  KRSP_CHECK_MSG(shard < names_.size(), "keyspace_share: bad shard index");
  if (points_.empty()) return 0.0;
  if (points_.size() == 1)  // sole point owns everything; the arc math
    return points_[0].shard == shard ? 1.0 : 0.0;  // below would wrap to 0
  // Point p owns the arc (previous point, p]; unsigned subtraction wraps
  // mod 2^64, which is exactly the first point's wrap-around arc from
  // the last. Arcs are summed in long double (each < 2^64; total 2^64).
  long double owned = 0.0L;
  std::uint64_t prev = points_.back().position;
  for (const Point& p : points_) {
    if (p.shard == shard)
      owned += static_cast<long double>(p.position - prev);
    prev = p.position;
  }
  return static_cast<double>(owned / 18446744073709551616.0L);  // / 2^64
}

}  // namespace krsp::router

// Wall-clock deadline passed through the solver pipeline.
//
// A Deadline is an absolute point in time (steady clock), so it can be
// split across stages and handed to nested solvers without re-anchoring:
// the scaled-mode wrapper passes the same Deadline to its inner
// exact-weights solver, and the resilience controller passes one through
// repair into the full re-solve. Default-constructed deadlines are
// unbounded and cost one branch to test, so every loop can check
// unconditionally.
//
// Checks happen between pipeline iterations (MCMF calls, cancellation
// rounds, cap guesses), so expiry is honored within one iteration's
// latency — a typed degradation step, never a mid-iteration abort that
// could leave an invalid PathSet.
#pragma once

#include <chrono>
#include <limits>
#include <optional>

namespace krsp::util {

class Deadline {
 public:
  /// Unbounded: never expires.
  Deadline() = default;

  /// Expires `seconds` from now; non-positive values mean unbounded
  /// (matching SolverOptions::deadline_seconds <= 0 = disabled).
  static Deadline after_seconds(double seconds) {
    Deadline d;
    if (seconds > 0.0) {
      d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(seconds));
    }
    return d;
  }

  [[nodiscard]] bool bounded() const { return at_.has_value(); }

  [[nodiscard]] bool expired() const {
    return at_.has_value() && Clock::now() >= *at_;
  }

  /// Seconds until expiry (<= 0 when expired); +inf when unbounded.
  [[nodiscard]] double remaining_seconds() const {
    if (!at_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(*at_ - Clock::now()).count();
  }

  /// The earlier of this deadline and one `seconds` from now — used to
  /// derive per-stage budgets from a whole-solve deadline.
  [[nodiscard]] Deadline clipped_after_seconds(double seconds) const {
    Deadline d = after_seconds(seconds);
    if (!d.at_) return *this;
    if (at_ && *at_ < *d.at_) return *this;
    return d;
  }

 private:
  using Clock = std::chrono::steady_clock;
  std::optional<Clock::time_point> at_;
};

}  // namespace krsp::util

// Minimal command-line flag parsing for examples and benchmark drivers.
//
// Supports `--name=value`, `--name value`, and boolean `--name`. Unknown
// flags are an error so typos in experiment scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "util/check.h"

namespace krsp::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      KRSP_CHECK_MSG(arg.rfind("--", 0) == 0, "unexpected argument: " << arg);
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";
      }
    }
  }

  [[nodiscard]] bool has(const std::string& name) const {
    touched_.push_back(name);
    return values_.count(name) > 0;
  }

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& def) const {
    touched_.push_back(name);
    const auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
  }

  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t def) const {
    const auto s = get_string(name, "");
    if (s.empty()) return def;
    return std::stoll(s);
  }

  [[nodiscard]] double get_double(const std::string& name, double def) const {
    const auto s = get_string(name, "");
    if (s.empty()) return def;
    return std::stod(s);
  }

  [[nodiscard]] bool get_bool(const std::string& name, bool def) const {
    const auto s = get_string(name, "");
    if (s.empty()) return def;
    return s == "true" || s == "1" || s == "yes";
  }

  /// Call after all get_* calls: rejects flags that nothing consumed.
  void reject_unknown() const {
    for (const auto& [name, value] : values_) {
      bool known = false;
      for (const auto& t : touched_)
        if (t == name) known = true;
      KRSP_CHECK_MSG(known, "unknown flag --" << name << "=" << value);
    }
  }

 private:
  std::map<std::string, std::string> values_;
  mutable std::vector<std::string> touched_;
};

}  // namespace krsp::util

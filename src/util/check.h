// Lightweight runtime checking macros.
//
// KRSP_CHECK is always active (library invariants, precondition violations
// are programmer errors and throw); KRSP_DCHECK compiles out in NDEBUG
// builds and is used on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace krsp::util {

/// Error thrown when a KRSP_CHECK fails. Distinct from std::logic_error so
/// tests can assert on the library's own invariant failures specifically.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "KRSP_CHECK failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail

}  // namespace krsp::util

#define KRSP_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond))                                                             \
      ::krsp::util::detail::check_failed(#cond, __FILE__, __LINE__, "");     \
  } while (0)

#define KRSP_CHECK_MSG(cond, msg)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::ostringstream krsp_check_os_;                                     \
      krsp_check_os_ << msg;                                                 \
      ::krsp::util::detail::check_failed(#cond, __FILE__, __LINE__,          \
                                         krsp_check_os_.str());              \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define KRSP_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define KRSP_DCHECK(cond) KRSP_CHECK(cond)
#endif

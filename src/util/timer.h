// Monotonic wall-clock timing for solver telemetry and benchmark tables.
#pragma once

#include <chrono>

namespace krsp::util {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }
  [[nodiscard]] double micros() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace krsp::util

// Console table printer used by the benchmark harnesses to emit the
// paper-style result tables (EXPERIMENTS.md copies these verbatim).
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/check.h"

namespace krsp::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Start a new row; subsequent cell() calls fill it left to right.
  Table& row() {
    rows_.emplace_back();
    return *this;
  }

  template <typename T>
  Table& cell(const T& value) {
    KRSP_CHECK(!rows_.empty());
    std::ostringstream os;
    os << value;
    rows_.back().push_back(os.str());
    return *this;
  }

  Table& cell_fp(double value, int precision = 3) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return cell(os.str());
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t i = 0; i < header_.size(); ++i)
      widths[i] = header_[i].size();
    for (const auto& r : rows_)
      for (std::size_t i = 0; i < r.size() && i < widths.size(); ++i)
        widths[i] = std::max(widths[i], r[i].size());

    auto print_row = [&](const std::vector<std::string>& cells) {
      os << "|";
      for (std::size_t i = 0; i < widths.size(); ++i) {
        const std::string& c = i < cells.size() ? cells[i] : std::string();
        os << ' ' << std::left << std::setw(static_cast<int>(widths[i])) << c
           << " |";
      }
      os << '\n';
    };

    print_row(header_);
    os << "|";
    for (const auto w : widths) os << std::string(w + 2, '-') << "|";
    os << '\n';
    for (const auto& r : rows_) print_row(r);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace krsp::util

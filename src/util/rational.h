// Exact rational arithmetic on 64-bit numerator/denominator.
//
// Used for Lagrange multipliers λ = p/q in the parametric phase-1 search and
// for the ΔD/ΔC ratio tests of Definition 10, where floating point would
// make the bicameral classification unsound near ties. Comparisons are
// performed in 128-bit intermediates so they never overflow for operands
// that themselves fit in 64 bits.
#pragma once

#include <cstdint>
#include <numeric>
#include <ostream>

#include "util/check.h"

namespace krsp::util {

// 128-bit intermediates (GCC/Clang extension, wrapped so -Wpedantic
// stays clean).
__extension__ typedef __int128 Int128;

class Rational {
 public:
  constexpr Rational() : num_(0), den_(1) {}
  constexpr Rational(std::int64_t value) : num_(value), den_(1) {}  // NOLINT
  Rational(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
    KRSP_CHECK_MSG(den != 0, "Rational with zero denominator");
    normalize();
  }

  [[nodiscard]] std::int64_t num() const { return num_; }
  [[nodiscard]] std::int64_t den() const { return den_; }

  [[nodiscard]] double to_double() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  [[nodiscard]] bool is_negative() const { return num_ < 0; }
  [[nodiscard]] bool is_zero() const { return num_ == 0; }

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend bool operator!=(const Rational& a, const Rational& b) {
    return !(a == b);
  }
  friend bool operator<(const Rational& a, const Rational& b) {
    return static_cast<Int128>(a.num_) * b.den_ <
           static_cast<Int128>(b.num_) * a.den_;
  }
  friend bool operator<=(const Rational& a, const Rational& b) {
    return !(b < a);
  }
  friend bool operator>(const Rational& a, const Rational& b) { return b < a; }
  friend bool operator>=(const Rational& a, const Rational& b) {
    return !(a < b);
  }

  friend Rational operator+(const Rational& a, const Rational& b) {
    return from128(static_cast<Int128>(a.num_) * b.den_ +
                       static_cast<Int128>(b.num_) * a.den_,
                   static_cast<Int128>(a.den_) * b.den_);
  }
  friend Rational operator-(const Rational& a, const Rational& b) {
    return from128(static_cast<Int128>(a.num_) * b.den_ -
                       static_cast<Int128>(b.num_) * a.den_,
                   static_cast<Int128>(a.den_) * b.den_);
  }
  friend Rational operator*(const Rational& a, const Rational& b) {
    return from128(static_cast<Int128>(a.num_) * b.num_,
                   static_cast<Int128>(a.den_) * b.den_);
  }
  friend Rational operator/(const Rational& a, const Rational& b) {
    KRSP_CHECK_MSG(b.num_ != 0, "Rational division by zero");
    return from128(static_cast<Int128>(a.num_) * b.den_,
                   static_cast<Int128>(a.den_) * b.num_);
  }
  Rational operator-() const {
    Rational r;
    r.num_ = -num_;
    r.den_ = den_;
    return r;
  }

  friend std::ostream& operator<<(std::ostream& os, const Rational& r) {
    os << r.num_;
    if (r.den_ != 1) os << '/' << r.den_;
    return os;
  }

 private:
  void normalize() {
    if (den_ < 0) {
      num_ = -num_;
      den_ = -den_;
    }
    const std::int64_t g = std::gcd(num_ < 0 ? -num_ : num_, den_);
    if (g > 1) {
      num_ /= g;
      den_ /= g;
    }
    if (num_ == 0) den_ = 1;
  }

  // Reduce a 128-bit fraction back into 64 bits; the gcd reduction keeps all
  // in-library uses (products of edge-weight sums) well inside range, and we
  // check rather than silently truncate.
  static Rational from128(Int128 num, Int128 den) {
    KRSP_CHECK(den != 0);
    if (den < 0) {
      num = -num;
      den = -den;
    }
    const Int128 a = num < 0 ? -num : num;
    Int128 g = gcd128(a, den);
    if (g > 1) {
      num /= g;
      den /= g;
    }
    KRSP_CHECK_MSG(num <= INT64_MAX && num >= INT64_MIN && den <= INT64_MAX,
                   "Rational overflow after reduction");
    Rational r;
    r.num_ = static_cast<std::int64_t>(num);
    r.den_ = static_cast<std::int64_t>(den);
    if (r.num_ == 0) r.den_ = 1;
    return r;
  }

  static Int128 gcd128(Int128 a, Int128 b) {
    while (b != 0) {
      const Int128 t = a % b;
      a = b;
      b = t;
    }
    return a;
  }

  std::int64_t num_;
  std::int64_t den_;
};

}  // namespace krsp::util

// Deterministic, seedable pseudo-random number generation.
//
// All stochastic code in the library (generators, property tests, benchmark
// workloads) draws from Rng so that every run is reproducible from a single
// 64-bit seed. The core generator is xoshiro256**, seeded via splitmix64 —
// both public-domain algorithms by Blackman & Vigna, implemented here from
// the published reference descriptions.
#pragma once

#include <cstdint>
#include <limits>

#include "util/check.h"

namespace krsp::util {

__extension__ typedef unsigned __int128 Uint128;

/// splitmix64 step: used for seeding and as a cheap standalone mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    KRSP_CHECK_MSG(lo <= hi, "uniform_int: lo=" << lo << " hi=" << hi);
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
    // Debiased modulo (Lemire-style rejection).
    std::uint64_t x = (*this)();
    Uint128 m = static_cast<Uint128>(x) * span;
    auto l = static_cast<std::uint64_t>(m);
    if (l < span) {
      const std::uint64_t floor = (0 - span) % span;
      while (l < floor) {
        x = (*this)();
        m = static_cast<Uint128>(x) * span;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<std::int64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) {
    return lo + (hi - lo) * uniform01();
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform01() < p; }

  /// Fork an independent stream (for parallel workers / sub-generators).
  Rng fork() { return Rng((*this)() ^ 0xa5a5a5a5a5a5a5a5ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace krsp::util

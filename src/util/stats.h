// Streaming statistics accumulator (Welford) plus percentile support for
// benchmark reporting.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "util/check.h"

namespace krsp::util {

/// Accumulates min/max/mean/stddev in a single pass (Welford's algorithm)
/// and optionally retains samples for exact percentiles.
class Stats {
 public:
  explicit Stats(bool keep_samples = true) : keep_samples_(keep_samples) {}

  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = count_ == 1 ? x : std::min(min_, x);
    max_ = count_ == 1 ? x : std::max(max_, x);
    if (keep_samples_) samples_.push_back(x);
  }

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const {
    return mean_ * static_cast<double>(count_);
  }

  [[nodiscard]] double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

  /// Exact percentile (nearest-rank); requires keep_samples.
  [[nodiscard]] double percentile(double p) const {
    KRSP_CHECK(keep_samples_);
    KRSP_CHECK(!samples_.empty());
    KRSP_CHECK(p >= 0.0 && p <= 100.0);
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
    return sorted[rank == 0 ? 0 : rank - 1];
  }

  [[nodiscard]] double median() const { return percentile(50.0); }

 private:
  bool keep_samples_;
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<double> samples_;
};

}  // namespace krsp::util

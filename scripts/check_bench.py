#!/usr/bin/env python3
"""Perf-regression gate for gated-benchmark JSON (E13 kernel, E14 serving).

Usage: check_bench.py BASELINE.json FRESH.json [--tolerance=0.25]

BASELINE is a committed BENCH_*.json (BENCH_kernel.json, BENCH_serving.json);
FRESH is the JSON a CI run just emitted (e.g. bench_kernel --smoke
--out=FRESH.json). Any benchmark emitting the same shape — a top-level
"identical" bool plus a "gate" object of {value, direction, min/max}
metrics — can use this gate. It fails (exit 1) when any of the following
holds:

  * the fresh run was not bit-identical — a correctness failure, not a
    perf one, and always fatal;
  * a gate metric regressed by more than the tolerance relative to the
    baseline (direction-aware: "higher" metrics may not drop below
    baseline*(1-tol), "lower" metrics may not rise above baseline*(1+tol));
  * a gate metric violates its absolute floor/ceiling ("min"/"max" in the
    baseline entry) — the hard acceptance bar, independent of drift.

Gate metrics are host-independent ratios (speedups, pruned fraction,
memory ratio), so comparing a laptop baseline against a CI runner is
meaningful; wall-clock milliseconds are reported but never gated.
"""

import json
import sys


def fail(msg):
    print(f"check_bench: FAIL: {msg}")
    return 1


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    tolerance = 0.25
    for a in argv[1:]:
        if a.startswith("--tolerance="):
            tolerance = float(a.split("=", 1)[1])
    if len(args) != 2:
        print(__doc__)
        return 2

    with open(args[0]) as f:
        baseline = json.load(f)
    with open(args[1]) as f:
        fresh = json.load(f)

    rc = 0
    if fresh.get("identical") is not True:
        rc |= fail("fresh run was not bit-identical (configurations or "
                   "served results diverged from the reference solve)")

    base_gate = baseline.get("gate", {})
    fresh_gate = fresh.get("gate", {})
    if not base_gate:
        rc |= fail(f"baseline {args[0]} has no gate block")
    for name, base in base_gate.items():
        if name not in fresh_gate:
            rc |= fail(f"gate metric '{name}' missing from fresh run")
            continue
        bval = base["value"]
        fval = fresh_gate[name]["value"]
        higher = base.get("direction", "higher") == "higher"
        if higher:
            limit = bval * (1.0 - tolerance)
            if fval < limit:
                rc |= fail(f"'{name}' regressed: {fval:.3f} < {limit:.3f} "
                           f"(baseline {bval:.3f}, tolerance {tolerance:.0%})")
            floor = base.get("min")
            if floor is not None and fval < floor:
                rc |= fail(f"'{name}' below absolute floor: "
                           f"{fval:.3f} < {floor:.3f}")
        else:
            limit = bval * (1.0 + tolerance)
            if fval > limit:
                rc |= fail(f"'{name}' regressed: {fval:.3f} > {limit:.3f} "
                           f"(baseline {bval:.3f}, tolerance {tolerance:.0%})")
            ceil = base.get("max")
            if ceil is not None and fval > ceil:
                rc |= fail(f"'{name}' above absolute ceiling: "
                           f"{fval:.3f} > {ceil:.3f}")
        if rc == 0:
            print(f"check_bench: ok: {name} = {fval:.3f} "
                  f"(baseline {bval:.3f})")

    if rc == 0:
        print("check_bench: PASS")
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env bash
# Rebuilds the project and regenerates every experiment table from
# DESIGN.md §4 (F1-F2, E1-E9) plus the microbenchmarks, teeing the raw
# output next to this script's repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

{
  for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "================================================================"
    echo "== $(basename "$b")"
    echo "================================================================"
    "$b"
    echo
  done
} 2>&1 | tee bench_output.txt

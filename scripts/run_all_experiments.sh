#!/usr/bin/env bash
# Rebuilds the project and regenerates every experiment table from
# DESIGN.md §4 (F1-F2, E1-E17) plus the microbenchmarks, teeing the raw
# output next to this script's repo root.
#
# Benches that require external inputs (bench_catalog needs a packed
# topology corpus) receive them automatically when present and are
# skipped with a note — not aborted under `set -e` — when absent.
# Override the corpus location with KRSP_CORPUS.
#
#   run_all_experiments.sh          # build, test, run everything
#   run_all_experiments.sh --plan   # print what would run, with args,
#                                   # without building or running
set -euo pipefail
cd "$(dirname "$0")/.."

CORPUS="${KRSP_CORPUS:-data/corpus}"

# Echoes the extra arguments a bench needs; returns 1 when its inputs
# are absent and the bench must be skipped.
bench_args() {
  case "$1" in
    bench_catalog|bench_fleet)
      [ -d "$CORPUS" ] || return 1
      echo "--corpus=$CORPUS"
      ;;
    *)
      echo ""
      ;;
  esac
}

if [ "${1:-}" = "--plan" ]; then
  for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    name="$(basename "$b")"
    if args="$(bench_args "$name")"; then
      echo "run $name${args:+ $args}"
    else
      echo "skip $name (inputs absent: corpus '$CORPUS' not found)"
    fi
  done
  exit 0
fi

# Reuse an already-configured build tree as-is (whatever generator it was
# set up with); otherwise configure fresh with the default generator, or
# honor an explicit KRSP_GENERATOR=Ninja/"Unix Makefiles"/... override.
if [ ! -f build/CMakeCache.txt ]; then
  cmake -B build ${KRSP_GENERATOR:+-G "$KRSP_GENERATOR"}
fi
cmake --build build --parallel
ctest --test-dir build --output-on-failure --timeout 600

{
  for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    name="$(basename "$b")"
    if ! args="$(bench_args "$name")"; then
      echo "== $name: skip (inputs absent: corpus '$CORPUS' not found)"
      echo
      continue
    fi
    echo "================================================================"
    echo "== $name${args:+ $args}"
    echo "================================================================"
    # shellcheck disable=SC2086
    "$b" $args
    echo
  done
} 2>&1 | tee bench_output.txt

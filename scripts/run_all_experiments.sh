#!/usr/bin/env bash
# Rebuilds the project and regenerates every experiment table from
# DESIGN.md §4 (F1-F2, E1-E13) plus the microbenchmarks, teeing the raw
# output next to this script's repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

# Reuse an already-configured build tree as-is (whatever generator it was
# set up with); otherwise configure fresh with the default generator, or
# honor an explicit KRSP_GENERATOR=Ninja/"Unix Makefiles"/... override.
if [ ! -f build/CMakeCache.txt ]; then
  cmake -B build ${KRSP_GENERATOR:+-G "$KRSP_GENERATOR"}
fi
cmake --build build --parallel
ctest --test-dir build --output-on-failure --timeout 600

{
  for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "================================================================"
    echo "== $(basename "$b")"
    echo "================================================================"
    "$b"
    echo
  done
} 2>&1 | tee bench_output.txt

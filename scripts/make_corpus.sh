#!/usr/bin/env sh
# Regenerates data/corpus/ — the committed real-topology catalog shipped
# with the repo in zero-copy .krspb form (store/format.h). Everything is
# derived deterministically from fixed seeds, and CsrContainer::write_file
# is bitwise deterministic, so running this script must reproduce the
# committed files exactly (CI's catalog leg relies on that).
#
#   usage: make_corpus.sh <krsp_gen-binary> [out-dir]
set -eu

GEN="$1"
OUT="${2:-$(dirname "$0")/../data/corpus}"
mkdir -p "$OUT"

# ISP-like hierarchy, well beyond the generator's defaults: a dense core
# with many regional pods hanging off it — the shape of the paper's
# motivating SLA-routing deployments.
# (k=2: the regional pods hang off the core with few uplinks, so three
# edge-disjoint region-to-region paths rarely exist.)
"$GEN" --family=isp --core=28 --regions=14 --region-size=16 \
       --k=2 --slack=0.35 --seed=1009 --out="$OUT/isp-backbone.krspb"

# Road-network-like 64x64 grid (n=4096): sparse, high diameter, the
# hard regime for delay-bounded disjoint routing.
"$GEN" --family=grid --n=4096 --k=2 --slack=0.4 --seed=2003 \
       --out="$OUT/road-grid64.krspb"

# Scale-free (Barabasi-Albert, 2 arcs per new vertex): hub-dominated,
# the opposite degree profile to the grid.
"$GEN" --family=ba --n=4000 --attach=2 --k=2 --slack=0.3 --seed=3001 \
       --out="$OUT/scalefree-ba4000.krspb"

echo "corpus written to $OUT"

#!/usr/bin/env sh
# End-to-end fleet serving test: boot two krsp_serve shards (one Unix
# socket, one TCP) behind a krsp_router TCP front, drive the fleet with
# krsp_loadgen --connect --check (every served response bit-identical to
# a direct solve, every served row naming its shard), then kill -9 one
# shard mid-run and require 100% eventual success through the router's
# mark-down + failover path. Finally SIGTERM the router and the survivor
# and require clean drains ending in structured final_stats lines (the
# shard's carrying the per-protocol solves_v1/solves_v2 split).
#
#   usage: fleet_smoke.sh <krsp_serve> <krsp_loadgen> <krsp_router> \
#                         <krsp_gen> <krsp_pack>
set -eu

SERVE="$1"
LOADGEN="$2"
ROUTER="$3"
GEN="$4"
PACK="$5"

# mktemp under /tmp keeps the path short (sun_path is ~108 bytes).
DIR="$(mktemp -d /tmp/krsp_fleet.XXXXXX)"
SOCK_A="$DIR/shard-a.sock"
CATALOG="$DIR/catalog"
LATENCY="$DIR/latency.csv"
mkdir -p "$CATALOG"
trap 'kill "$ROUTER_PID" "$SHARD_A_PID" "$SHARD_B_PID" 2>/dev/null || true
      rm -rf "$DIR"' EXIT

# One catalog entry shared by both shards and the router: the router must
# see the same catalog so v2 requests fingerprint onto the same ring keys
# the shards cache under.
"$GEN" --family=waxman --n=40 --k=2 --slack=0.35 --seed=77 \
       --out="$DIR/waxman.kri" >/dev/null
"$PACK" --in="$DIR/waxman.kri" --out="$CATALOG/waxman40.krspb" >/dev/null

# Parse the kernel-picked port from a server's announced
#   {"event":"listening","transport":"tcp","port":NNNN}
# line, waiting for the process to write it.
wait_port() {
  _log="$1"; _pid="$2"; _who="$3"
  i=0
  while :; do
    _port="$(sed -n 's/.*"event":"listening".*"port":\([0-9]*\).*/\1/p' \
             "$_log" | head -n 1)"
    [ -n "$_port" ] && { echo "$_port"; return 0; }
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
      echo "fleet_smoke: $_who never announced its port" >&2
      exit 1
    fi
    if ! kill -0 "$_pid" 2>/dev/null; then
      echo "fleet_smoke: $_who exited before listening" >&2
      exit 1
    fi
    sleep 0.1
  done
}

"$SERVE" --socket="$SOCK_A" --threads=1 --max-pending=64 \
  --catalog="$CATALOG" > "$DIR/shard-a.log" 2>&1 &
SHARD_A_PID=$!
"$SERVE" --tcp=0 --threads=1 --max-pending=64 \
  --catalog="$CATALOG" > "$DIR/shard-b.log" 2>&1 &
SHARD_B_PID=$!

i=0
while [ ! -S "$SOCK_A" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "fleet_smoke: shard A never bound $SOCK_A" >&2
    exit 1
  fi
  if ! kill -0 "$SHARD_A_PID" 2>/dev/null; then
    echo "fleet_smoke: shard A exited before binding" >&2
    exit 1
  fi
  sleep 0.1
done
PORT_B="$(wait_port "$DIR/shard-b.log" "$SHARD_B_PID" "shard B")"

# Fast health knobs so the mid-run kill is detected within ~100ms.
"$ROUTER" --tcp=0 --shards="$SOCK_A,127.0.0.1:$PORT_B" \
  --catalog="$CATALOG" --probe-interval-ms=50 \
  --mark-down-after=2 --mark-up-after=2 --quiet \
  > "$DIR/router.log" 2>&1 &
ROUTER_PID=$!
RPORT="$(wait_port "$DIR/router.log" "$ROUTER_PID" "router")"

# Healthy fleet: every request served, bit-identical to a direct solve,
# and every served CSV row names the shard that answered.
"$LOADGEN" --connect="127.0.0.1:$RPORT" --catalog="$CATALOG" \
  --topology=waxman40 --requests=24 --connections=2 --mode=exact \
  --check --latency-out="$LATENCY"
served_rows="$(awk -F, '$4 == "served" && $8 != "" { n++ } END { print n+0 }' \
               "$LATENCY")"
if [ "$served_rows" -ne 24 ]; then
  echo "fleet_smoke: expected 24 served rows naming a shard, got $served_rows" >&2
  cat "$LATENCY" >&2
  exit 1
fi

# Kill shard A mid-run: an open-loop paced run long enough (~6s) that the
# kill lands inside it. With retries armed, every request must still
# eventually succeed — the router classifies the refused connect as
# retryable-elsewhere, marks the shard down, and fails over; krsp_loadgen
# exits nonzero if even one request never lands.
"$LOADGEN" --connect="127.0.0.1:$RPORT" --catalog="$CATALOG" \
  --topology=waxman40 --requests=120 --connections=2 --rate=20 \
  --mode=exact --check --retries=8 --timeout-ms=5000 &
LOADGEN_PID=$!
sleep 2
kill -9 "$SHARD_A_PID"
if ! wait "$LOADGEN_PID"; then
  echo "fleet_smoke: loadgen failed after shard A was killed" >&2
  cat "$DIR/router.log" >&2
  exit 1
fi

# SIGTERM the router: graceful drain plus its final_stats accounting —
# traffic was routed, and the killed shard ended marked down.
kill -TERM "$ROUTER_PID"
if ! wait "$ROUTER_PID"; then
  echo "fleet_smoke: router exited non-zero after SIGTERM" >&2
  cat "$DIR/router.log" >&2
  exit 1
fi
for needle in '"event":"final_stats"' '"router":true' '"state":"down"'; do
  if ! grep -q "$needle" "$DIR/router.log"; then
    echo "fleet_smoke: router final_stats missing $needle:" >&2
    cat "$DIR/router.log" >&2
    exit 1
  fi
done

# The surviving shard drains cleanly too, reporting the per-protocol
# solve split (all traffic here was v2 topology requests).
kill -TERM "$SHARD_B_PID"
if ! wait "$SHARD_B_PID"; then
  echo "fleet_smoke: shard B exited non-zero after SIGTERM" >&2
  cat "$DIR/shard-b.log" >&2
  exit 1
fi
for needle in '"event":"final_stats"' '"solves_v1":' '"solves_v2":'; do
  if ! grep -q "$needle" "$DIR/shard-b.log"; then
    echo "fleet_smoke: shard B final_stats missing $needle:" >&2
    cat "$DIR/shard-b.log" >&2
    exit 1
  fi
done

echo "fleet_smoke: OK"

#!/usr/bin/env sh
# End-to-end chaos serving test: boot krsp_serve with the SLA ladder armed,
# hammer it with krsp_loadgen under a 10% transport fault rate with retries
# armed (every idempotent request must eventually succeed and --check every
# served response bit-identical to a direct solve), then SIGTERM the daemon
# and require a clean drain that emits the structured final_stats line.
#
#   usage: chaos_serve.sh <krsp_serve-binary> <krsp_loadgen-binary>
set -eu

SERVE="$1"
LOADGEN="$2"

# mktemp under /tmp keeps the path short (sun_path is ~108 bytes).
DIR="$(mktemp -d /tmp/krsp_chaos.XXXXXX)"
SOCK="$DIR/krsp.sock"
LOG="$DIR/serve.log"
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$DIR"' EXIT

"$SERVE" --socket="$SOCK" --threads=2 --max-pending=64 \
  --max-pending-batch=48 --degrade-wait=5 > "$LOG" 2>&1 &
SERVER_PID=$!

# Wait for the socket to appear (the server binds before serving).
i=0
while [ ! -S "$SOCK" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "chaos_serve: server never bound $SOCK" >&2
    exit 1
  fi
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "chaos_serve: server exited before binding" >&2
    exit 1
  fi
  sleep 0.1
done

# 10% of sends draw a fault (garbage / stall / truncate / reset / slow
# read); with retries armed every request must still eventually succeed —
# krsp_loadgen exits nonzero otherwise, and --check pins bit-identity.
"$LOADGEN" --socket="$SOCK" --requests=48 --connections=4 --pool=4 \
  --n=10 --seed=99 --mode=exact --check --stats \
  --fault-rate=0.1 --fault-seed=12 --retries=8 --timeout-ms=5000

# SIGTERM must drain gracefully: clean exit plus the structured stats line.
kill -TERM "$SERVER_PID"
if ! wait "$SERVER_PID"; then
  echo "chaos_serve: server exited non-zero after SIGTERM" >&2
  exit 1
fi
if ! grep -q '"event":"final_stats"' "$LOG"; then
  echo "chaos_serve: no final_stats line in server output:" >&2
  cat "$LOG" >&2
  exit 1
fi
echo "chaos_serve: OK"

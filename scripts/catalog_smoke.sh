#!/usr/bin/env sh
# End-to-end catalog smoke test for wire protocol v2: pack a text
# instance into a .krspb container, assemble a catalog directory next to
# the committed corpus files, boot krsp_serve --catalog on a temporary
# Unix socket, and drive it with krsp_loadgen --topology --check (every
# served response must be bit-identical to a direct in-process solve of
# the same container).
#
#   usage: catalog_smoke.sh <krsp_serve> <krsp_loadgen> <krsp_gen>
#          <krsp_pack> <corpus-dir>
set -eu

SERVE="$1"
LOADGEN="$2"
GEN="$3"
PACK="$4"
CORPUS="$5"

DIR="$(mktemp -d /tmp/krsp_catalog.XXXXXX)"
SOCK="$DIR/krsp.sock"
CATALOG="$DIR/catalog"
mkdir -p "$CATALOG"
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$DIR"' EXIT

# Leg 1: the pack pipeline. Generate a text instance, convert it with
# krsp_pack, verify the container, and round-trip it back to text —
# unpack(pack(x)) must be byte-identical to x.
"$GEN" --family=waxman --n=40 --k=2 --slack=0.35 --seed=77 \
       --out="$DIR/waxman.kri" >/dev/null
"$PACK" --in="$DIR/waxman.kri" --out="$CATALOG/waxman40.krspb" >/dev/null
"$PACK" --verify="$CATALOG/waxman40.krspb" >/dev/null
"$PACK" --in="$CATALOG/waxman40.krspb" --out="$DIR/waxman_back.kri" >/dev/null
if ! cmp -s "$DIR/waxman.kri" "$DIR/waxman_back.kri"; then
  echo "catalog_smoke: unpack(pack(x)) != x" >&2
  exit 1
fi

# Leg 2: serve the packed instance plus the committed corpus.
cp "$CORPUS"/*.krspb "$CATALOG/"
"$SERVE" --socket="$SOCK" --threads=2 --max-pending=64 \
         --catalog="$CATALOG" &
SERVER_PID=$!

i=0
while [ ! -S "$SOCK" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "catalog_smoke: server never bound $SOCK" >&2
    exit 1
  fi
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "catalog_smoke: server exited before binding" >&2
    exit 1
  fi
  sleep 0.1
done

# Repeated topology-reference requests: exercises the catalog lookup,
# the fingerprint-prefix cache path, and checks every response against a
# direct solve of the same container. phase1 keeps the corpus-scale
# graphs cheap to verify.
"$LOADGEN" --socket="$SOCK" --catalog="$CATALOG" \
  --topology=waxman40,isp-backbone --requests=16 --connections=2 \
  --mode=phase1 --check --stats --shutdown

if ! wait "$SERVER_PID"; then
  echo "catalog_smoke: server exited non-zero" >&2
  exit 1
fi
echo "catalog_smoke: OK"

#!/usr/bin/env sh
# Pins run_all_experiments.sh's input handling: the corpus-consuming
# benches (bench_catalog, bench_fleet) must run with --corpus when the
# committed corpus exists, and must be skipped cleanly — not abort the
# sweep under `set -e` — when it does not.
#
#   usage: run_all_plan_test.sh <repo-root>
set -eu

ROOT="$1"
SCRIPT="$ROOT/scripts/run_all_experiments.sh"

PLAN="$("$SCRIPT" --plan)"
for bench in bench_catalog bench_fleet; do
  if ! echo "$PLAN" | grep -q "^run $bench --corpus="; then
    echo "FAIL: expected $bench to run with --corpus; plan was:" >&2
    echo "$PLAN" >&2
    exit 1
  fi
done
if echo "$PLAN" | grep -q "^skip"; then
  echo "FAIL: nothing should be skipped with the corpus present:" >&2
  echo "$PLAN" >&2
  exit 1
fi

PLAN_NO_CORPUS="$(KRSP_CORPUS=/nonexistent-krsp-corpus "$SCRIPT" --plan)"
for bench in bench_catalog bench_fleet; do
  if ! echo "$PLAN_NO_CORPUS" | grep -q "^skip $bench "; then
    echo "FAIL: expected $bench to be skipped without a corpus:" >&2
    echo "$PLAN_NO_CORPUS" >&2
    exit 1
  fi
  if echo "$PLAN_NO_CORPUS" | grep -q "^run $bench"; then
    echo "FAIL: $bench must not run without a corpus:" >&2
    echo "$PLAN_NO_CORPUS" >&2
    exit 1
  fi
done

echo "run_all_plan_test: OK"

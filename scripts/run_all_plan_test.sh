#!/usr/bin/env sh
# Pins run_all_experiments.sh's input handling: bench_catalog must run
# with --corpus when the committed corpus exists, and must be skipped
# cleanly — not abort the sweep under `set -e` — when it does not.
#
#   usage: run_all_plan_test.sh <repo-root>
set -eu

ROOT="$1"
SCRIPT="$ROOT/scripts/run_all_experiments.sh"

PLAN="$("$SCRIPT" --plan)"
if ! echo "$PLAN" | grep -q "^run bench_catalog --corpus="; then
  echo "FAIL: expected bench_catalog to run with --corpus; plan was:" >&2
  echo "$PLAN" >&2
  exit 1
fi
if echo "$PLAN" | grep -q "^skip"; then
  echo "FAIL: nothing should be skipped with the corpus present:" >&2
  echo "$PLAN" >&2
  exit 1
fi

PLAN_NO_CORPUS="$(KRSP_CORPUS=/nonexistent-krsp-corpus "$SCRIPT" --plan)"
if ! echo "$PLAN_NO_CORPUS" | grep -q "^skip bench_catalog "; then
  echo "FAIL: expected bench_catalog to be skipped without a corpus:" >&2
  echo "$PLAN_NO_CORPUS" >&2
  exit 1
fi
if echo "$PLAN_NO_CORPUS" | grep -q "^run bench_catalog"; then
  echo "FAIL: bench_catalog must not run without a corpus:" >&2
  echo "$PLAN_NO_CORPUS" >&2
  exit 1
fi

echo "run_all_plan_test: OK"

#!/usr/bin/env sh
# End-to-end observability smoke test: boot krsp_serve --catalog with
# --trace-out on a temporary Unix socket, drive it with krsp_loadgen
# --topology --check --latency-out, probe the `metrics` wire op and the
# per-request `timing` flag over the raw socket, shut the server down,
# then validate every exported artifact:
#   * the Chrome trace is valid JSON and contains the span taxonomy the
#     serving path promises (phase1, rsp_oracle, cycle_cancel_round,
#     queue_wait, cache_lookup, admission);
#   * the metrics exposition carries per-SLA-class latency quantiles;
#   * a timing-flagged solve response breaks its latency down;
#   * the load generator's --latency-out CSV has the documented header
#     and one served row per request.
#
#   usage: obs_smoke.sh <krsp_serve> <krsp_loadgen> <krsp_gen> <krsp_pack>
set -eu

SERVE="$1"
LOADGEN="$2"
GEN="$3"
PACK="$4"

DIR="$(mktemp -d /tmp/krsp_obs.XXXXXX)"
SOCK="$DIR/krsp.sock"
CATALOG="$DIR/catalog"
TRACE="$DIR/trace.json"
LATENCY="$DIR/latency.csv"
mkdir -p "$CATALOG"
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$DIR"' EXIT

# A small catalog entry solved in scaled mode: large enough that the
# solver runs phase 1, the RSP oracle, and cycle cancellation (so their
# spans must appear), small enough to stay fast.
"$GEN" --family=waxman --n=40 --k=2 --slack=0.35 --seed=77 \
       --out="$DIR/waxman.kri" >/dev/null
"$PACK" --in="$DIR/waxman.kri" --out="$CATALOG/waxman40.krspb" >/dev/null

"$SERVE" --socket="$SOCK" --threads=2 --max-pending=64 \
         --catalog="$CATALOG" --trace-out="$TRACE" &
SERVER_PID=$!

i=0
while [ ! -S "$SOCK" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "obs_smoke: server never bound $SOCK" >&2
    exit 1
  fi
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "obs_smoke: server exited before binding" >&2
    exit 1
  fi
  sleep 0.1
done

# Traffic that exercises the full serving path (admission, cache lookup,
# engine queue, solve) with per-request latencies exported.
"$LOADGEN" --socket="$SOCK" --catalog="$CATALOG" --topology=waxman40 \
  --requests=12 --connections=2 --mode=scaled --check \
  --latency-out="$LATENCY"

# Raw-socket probes: the metrics op and a timing-flagged solve.
python3 - "$SOCK" <<'EOF'
import json
import socket
import sys


def rpc(sock_path, request):
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.connect(sock_path)
    s.sendall((json.dumps(request) + "\n").encode())
    buf = b""
    while not buf.endswith(b"\n"):
        chunk = s.recv(65536)
        if not chunk:
            break
        buf += chunk
    s.close()
    return json.loads(buf)


sock = sys.argv[1]

metrics = rpc(sock, {"op": "metrics"})
assert metrics.get("ok") is True, metrics
assert metrics.get("protocol_version") == 2, metrics
text = metrics["metrics"]
for needle in (
    '# TYPE krsp_serve_latency_ns summary',
    'krsp_serve_latency_ns{class="batch",quantile="0.99"}',
    'krsp_serve_requests_total{class="batch",outcome="served"}',
    'krsp_wire_requests_total{op="solve"}',
    'krsp_transport_bytes_total{direction="in"}',
):
    assert needle in text, "metrics exposition missing: " + needle

timed = rpc(sock, {"op": "solve", "id": "timed-1", "topology": "waxman40",
                   "mode": "scaled", "timing": True})
assert timed.get("ok") is True, timed
timing = timed.get("timing")
assert timing is not None, "timing flag did not produce a breakdown"
for key in ("cache_lookup_ms", "admission_ms", "queue_wait_ms", "solve_ms",
            "total_ms"):
    assert key in timing, "timing breakdown missing " + key
    # On a cache hit solve_ms echoes the cached result's original solve
    # wall (and can exceed total_ms), so only non-negativity is invariant.
    assert timing[key] >= 0.0, timing
assert timing["total_ms"] > 0.0, timing

plain = rpc(sock, {"op": "solve", "id": "plain-1", "topology": "waxman40",
                   "mode": "scaled"})
assert plain.get("ok") is True, plain
assert "timing" not in plain, "timing must be opt-in"

print("obs_smoke: wire probes OK")
EOF

"$LOADGEN" --socket="$SOCK" --shutdown >/dev/null
if ! wait "$SERVER_PID"; then
  echo "obs_smoke: server exited non-zero" >&2
  exit 1
fi

# The server writes the Chrome trace on clean shutdown; validate its
# shape and the span taxonomy end to end.
python3 - "$TRACE" "$LATENCY" <<'EOF'
import csv
import json
import sys

with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert events, "trace has no events"
names = {e["name"] for e in events}
expected = {"phase1", "rsp_oracle", "cycle_cancel_round", "queue_wait",
            "cache_lookup", "admission", "wire_handle", "transport_read"}
missing = expected - names
assert not missing, "trace missing spans: %s (have %s)" % (
    sorted(missing), sorted(names))
for e in events:
    assert e["ph"] == "X" and e["dur"] >= 0 and e["ts"] >= 0, e

with open(sys.argv[2]) as f:
    rows = list(csv.DictReader(f))
assert rows, "latency CSV is empty"
assert set(rows[0]) == {"request", "connection", "pool", "outcome",
                        "latency_ms", "cache_hit", "degraded",
                        "shard"}, rows[0]
served = [r for r in rows if r["outcome"] == "served"]
assert len(served) == 12, "expected 12 served rows, got %d" % len(served)
assert all(float(r["latency_ms"]) >= 0.0 for r in rows)

print("obs_smoke: trace spans %s; %d latency rows OK" % (
    sorted(expected & names), len(rows)))
EOF

echo "obs_smoke: OK"

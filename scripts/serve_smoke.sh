#!/usr/bin/env sh
# End-to-end serving smoke test: boot krsp_serve on a temporary Unix
# socket, drive it with krsp_loadgen --check (every served response must
# be bit-identical to a direct in-process solve), then shut it down over
# the wire and require a clean exit from both sides.
#
#   usage: serve_smoke.sh <krsp_serve-binary> <krsp_loadgen-binary>
set -eu

SERVE="$1"
LOADGEN="$2"

# mktemp under /tmp keeps the path short (sun_path is ~108 bytes).
DIR="$(mktemp -d /tmp/krsp_smoke.XXXXXX)"
SOCK="$DIR/krsp.sock"
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$DIR"' EXIT

"$SERVE" --socket="$SOCK" --threads=2 --max-pending=64 &
SERVER_PID=$!

# Wait for the socket to appear (the server binds before serving).
i=0
while [ ! -S "$SOCK" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "serve_smoke: server never bound $SOCK" >&2
    exit 1
  fi
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "serve_smoke: server exited before binding" >&2
    exit 1
  fi
  sleep 0.1
done

# Mixed pool, repeated requests so the cache path is exercised too.
"$LOADGEN" --socket="$SOCK" --requests=24 --connections=3 --pool=4 \
  --n=10 --seed=99 --mode=exact --check --stats --shutdown

# The shutdown op must drain the server to a clean exit.
if ! wait "$SERVER_PID"; then
  echo "serve_smoke: server exited non-zero" >&2
  exit 1
fi
echo "serve_smoke: OK"
